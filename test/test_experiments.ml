(** Experiment-harness tests: the sweep machinery itself (counters,
    configurations) and loose shape assertions on a miniature version of
    the paper's Figures 2-4 — loose enough to be timing-robust, tight
    enough to catch a broken filter tree or a dead view-matching rule. *)

module H = Mv_experiments.Harness

let mini =
  lazy (H.make_workload ~nviews:150 ~nqueries:25 ())

let test_workload_shape () =
  let w = Lazy.force mini in
  Alcotest.(check int) "views" 150 (List.length w.H.views);
  Alcotest.(check int) "queries" 25 (List.length w.H.queries)

let test_counters_consistent () =
  let w = Lazy.force mini in
  let m = H.run w ~nviews:150 ~config:{ H.alt = true; filter = true } in
  Alcotest.(check bool) "invocations happen" true (m.H.invocations > 0);
  Alcotest.(check bool) "invocations >= queries" true
    (m.H.invocations >= m.H.queries);
  Alcotest.(check bool) "matched <= candidates" true
    (m.H.matched <= m.H.candidates);
  Alcotest.(check bool) "substitutes = matched (one per view)" true
    (m.H.substitutes = m.H.matched);
  Alcotest.(check bool) "rule wall time positive" true
    (m.H.rule_wall_time > 0.0);
  Alcotest.(check bool) "rule wall time <= total wall" true
    (m.H.rule_wall_time <= m.H.wall_time +. 0.05);
  Alcotest.(check bool) "rule cpu time <= total cpu" true
    (m.H.rule_cpu_time <= m.H.cpu_time +. 0.05);
  (* CPU can exceed wall only through parallelism; this harness is
     single-threaded, so wall bounds cpu (modulo clock noise) *)
  Alcotest.(check bool) "cpu <= wall + noise" true
    (m.H.cpu_time <= m.H.wall_time +. 0.1);
  (* the Filter configuration must report a per-level breakdown *)
  Alcotest.(check bool) "level flow present" true (m.H.level_flow <> []);
  List.iter
    (fun (f : H.level_flow) ->
      Alcotest.(check bool)
        (Printf.sprintf "level %s passes <= entered" f.H.level)
        true (f.H.passed <= f.H.entered))
    m.H.level_flow

let test_noalt_same_invocations_no_plans () =
  let w = Lazy.force mini in
  let alt = H.run w ~nviews:150 ~config:{ H.alt = true; filter = true } in
  let noalt = H.run w ~nviews:150 ~config:{ H.alt = false; filter = true } in
  (* the rule runs either way; only plan usage differs *)
  Alcotest.(check bool) "noalt never uses views" true
    (noalt.H.plans_using_views = 0);
  Alcotest.(check bool) "alt uses some views" true (alt.H.plans_using_views > 0);
  (* NoAlt skips the exploration of substitute-derived alternatives, so it
     can only have fewer or equal invocations *)
  Alcotest.(check bool) "invocation counts comparable" true
    (abs (alt.H.invocations - noalt.H.invocations)
    <= alt.H.invocations / 2)

let test_filter_reduces_candidates () =
  let w = Lazy.force mini in
  let filtered = H.run w ~nviews:150 ~config:{ H.alt = true; filter = true } in
  let linear = H.run w ~nviews:150 ~config:{ H.alt = true; filter = false } in
  (* identical matches... *)
  Alcotest.(check int) "same substitutes" linear.H.substitutes
    filtered.H.substitutes;
  Alcotest.(check int) "same plans" linear.H.plans_using_views
    filtered.H.plans_using_views;
  (* ...from far fewer candidates *)
  Alcotest.(check bool)
    (Printf.sprintf "filtered %d << linear %d" filtered.H.candidates
       linear.H.candidates)
    true
    (filtered.H.candidates * 5 < linear.H.candidates)

let test_more_views_more_plans () =
  let w = Lazy.force mini in
  let at n = H.run w ~nviews:n ~config:{ H.alt = true; filter = true } in
  let m0 = at 0 and m150 = at 150 in
  Alcotest.(check int) "no views, no view plans" 0 m0.H.plans_using_views;
  Alcotest.(check bool) "views get used" true (m150.H.plans_using_views > 0);
  Alcotest.(check bool) "candidate counts grow" true
    (m150.H.candidates >= m0.H.candidates)

let test_sweep_covers_grid () =
  let w = Lazy.force mini in
  let ms =
    H.sweep w ~nviews_list:[ 0; 150 ]
      ~configs:[ { H.alt = true; filter = true }; { H.alt = true; filter = false } ]
  in
  Alcotest.(check int) "grid size" 4 (List.length ms)

(* ---- Pool.chunk_bounds edge cases ---- *)

module Pool = Mv_experiments.Pool

let bounds = Alcotest.(list (pair int int))

let test_chunk_bounds_edges () =
  Alcotest.(check bounds) "zero items: one empty chunk" [ (0, 0) ]
    (Pool.chunk_bounds ~domains:4 0);
  Alcotest.(check bounds) "one item, many domains" [ (0, 1) ]
    (Pool.chunk_bounds ~domains:4 1);
  Alcotest.(check bounds) "one domain takes everything" [ (0, 5) ]
    (Pool.chunk_bounds ~domains:1 5);
  (* more domains than items: one chunk per item, never an empty chunk *)
  Alcotest.(check bounds) "3 items over 8 domains"
    [ (0, 1); (1, 2); (2, 3) ]
    (Pool.chunk_bounds ~domains:8 3);
  (* a non-dividing split leans the remainder onto the leading chunks *)
  Alcotest.(check bounds) "10 items over 4 domains"
    [ (0, 3); (3, 6); (6, 8); (8, 10) ]
    (Pool.chunk_bounds ~domains:4 10)

(* The invariants behind those examples, swept over a grid: the chunks
   partition [0, n) contiguously and in order, sizes differ by at most
   one, and the chunk count is min(domains, n) (one empty chunk when
   n = 0). Catches the classic lo/hi off-by-one at chunk boundaries. *)
let test_chunk_bounds_invariants () =
  for domains = 1 to 9 do
    for n = 0 to 40 do
      let label fmt = Printf.ksprintf (fun s ->
          Printf.sprintf "d=%d n=%d: %s" domains n s) fmt
      in
      let chunks = Pool.chunk_bounds ~domains n in
      Alcotest.(check int) (label "chunk count")
        (if n = 0 then 1 else min domains n)
        (List.length chunks);
      let sizes = List.map (fun (lo, hi) -> hi - lo) chunks in
      List.iter
        (fun s ->
          Alcotest.(check bool) (label "no negative chunk") true (s >= 0))
        sizes;
      (match (List.sort compare sizes, n) with
      | _, 0 -> ()
      | smallest :: _, _ ->
          let largest = List.fold_left max smallest sizes in
          Alcotest.(check bool) (label "sizes differ by at most one") true
            (largest - smallest <= 1)
      | [], _ -> Alcotest.fail (label "no chunks"));
      (* contiguous partition: starts at 0, each hi is the next lo, ends
         at n *)
      let final =
        List.fold_left
          (fun expected_lo (lo, hi) ->
            Alcotest.(check int) (label "contiguous at %d" lo) expected_lo lo;
            hi)
          0 chunks
      in
      Alcotest.(check int) (label "covers [0, n)") n final
    done
  done

let suite =
  [
    ( "experiments",
      [
        Alcotest.test_case "workload shape" `Quick test_workload_shape;
        Alcotest.test_case "counters consistent" `Quick test_counters_consistent;
        Alcotest.test_case "NoAlt runs the rule, uses no plans" `Quick
          test_noalt_same_invocations_no_plans;
        Alcotest.test_case "filter tree: same result, fewer candidates" `Quick
          test_filter_reduces_candidates;
        Alcotest.test_case "more views, more view plans" `Quick
          test_more_views_more_plans;
        Alcotest.test_case "sweep covers the grid" `Quick test_sweep_covers_grid;
        Alcotest.test_case "chunk_bounds edge cases" `Quick
          test_chunk_bounds_edges;
        Alcotest.test_case "chunk_bounds invariants over a grid" `Quick
          test_chunk_bounds_invariants;
      ] );
  ]
