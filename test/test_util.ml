(** Utility tests: union-find properties and PRNG sanity. *)

module UF = Mv_util.Union_find.Make (Int)
module Prng = Mv_util.Prng

(* union-find must agree with a naive transitive closure *)
let uf_prop =
  QCheck.Test.make ~name:"union-find: agrees with transitive closure"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let uf = UF.create () in
      List.iter (fun (a, b) -> UF.union uf a b) pairs;
      (* naive closure over 0..9 *)
      let reach = Array.make_matrix 10 10 false in
      for i = 0 to 9 do
        reach.(i).(i) <- true
      done;
      List.iter
        (fun (a, b) ->
          reach.(a).(b) <- true;
          reach.(b).(a) <- true)
        pairs;
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to 9 do
          for j = 0 to 9 do
            for k = 0 to 9 do
              if reach.(i).(k) && reach.(k).(j) && not reach.(i).(j) then begin
                reach.(i).(j) <- true;
                changed := true
              end
            done
          done
        done
      done;
      let ok = ref true in
      List.iter
        (fun (a, _) ->
          List.iter
            (fun (b, _) ->
              if UF.same uf a b <> reach.(a).(b) then ok := false)
            pairs)
        pairs;
      !ok)

let test_uf_classes () =
  let uf = UF.create () in
  List.iter (UF.add uf) [ 1; 2; 3; 4; 5 ];
  UF.union uf 1 2;
  UF.union uf 2 3;
  let classes = UF.classes uf in
  let sizes = List.sort compare (List.map List.length classes) in
  Alcotest.(check (list int)) "class sizes" [ 1; 1; 3 ] sizes

let test_uf_copy_isolated () =
  let uf = UF.create () in
  UF.union uf 1 2;
  let cp = UF.copy uf in
  UF.union cp 2 3;
  Alcotest.(check bool) "copy merged" true (UF.same cp 1 3);
  Alcotest.(check bool) "original untouched" false (UF.same uf 1 3)

let test_prng_determinism () =
  let a = Prng.create 5 and b = Prng.create 5 in
  let xs = List.init 100 (fun _ -> Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let prng_bounds_prop =
  QCheck.Test.make ~name:"prng: int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      List.for_all
        (fun _ ->
          let x = Prng.int rng bound in
          x >= 0 && x < bound)
        (List.init 50 Fun.id))

let test_prng_uniformish () =
  let rng = Prng.create 123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10000 do
    let x = Prng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i n ->
      if n < 700 || n > 1300 then
        Alcotest.failf "bucket %d has %d of 10000 (expected ~1000)" i n)
    buckets

let test_pick_weighted () =
  let rng = Prng.create 9 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 1000 do
    match Prng.pick_weighted rng [ (9.0, `A); (1.0, `B) ] with
    | `A -> incr a
    | `B -> incr b
  done;
  Alcotest.(check bool) "weighting respected" true (!a > !b * 4)

let test_shuffle_permutes () =
  let rng = Prng.create 17 in
  let xs = List.init 20 Fun.id in
  let ys = Prng.shuffle rng xs in
  Alcotest.(check (list int)) "same elements" xs (List.sort compare ys)

let test_sset_helpers () =
  let s = Mv_util.Sset.of_list [ "b"; "a"; "a" ] in
  Alcotest.(check (list string)) "sorted unique" [ "a"; "b" ]
    (Mv_util.Sset.to_list s);
  Alcotest.(check string) "printing" "{a, b}" (Mv_util.Sset.to_string s)

(* ---- bitsets: every operation must agree with a sorted-int-list model.
   Elements span several words (0..200) so normalization across widths —
   the property making equality/hash well-defined — gets exercised. *)

module Bitset = Mv_util.Bitset

let elems_gen = QCheck.Gen.(list_size (int_range 0 25) (int_range 0 200))

let elems_arb =
  QCheck.make
    ~print:(fun xs -> String.concat "," (List.map string_of_int xs))
    elems_gen

let model xs = List.sort_uniq compare xs

let bitset_model_prop =
  QCheck.Test.make ~name:"bitset: ops agree with a sorted-list model"
    ~count:500
    QCheck.(pair elems_arb elems_arb)
    (fun (xs, ys) ->
      let a = Bitset.of_list xs and b = Bitset.of_list ys in
      let ma = model xs and mb = model ys in
      Bitset.elements a = ma
      && Bitset.elements b = mb
      && Bitset.cardinal a = List.length ma
      && Bitset.elements (Bitset.union a b) = model (xs @ ys)
      && Bitset.elements (Bitset.inter a b)
         = List.filter (fun x -> List.mem x mb) ma
      && Bitset.subset a b = List.for_all (fun x -> List.mem x mb) ma
      && Bitset.inter_empty a b
         = not (List.exists (fun x -> List.mem x mb) ma)
      && Bitset.equal a b = (ma = mb)
      && List.for_all (fun x -> Bitset.mem a x) ma
      && not (Bitset.mem a 201))

let bitset_norm_prop =
  QCheck.Test.make
    ~name:"bitset: equal sets have equal hashes across widths" ~count:500
    elems_arb
    (fun xs ->
      let a = Bitset.of_list xs in
      (* build the same set along a different path, through a larger
         intermediate set that forces wider internal arrays *)
      let b =
        List.fold_left
          (fun acc x -> Bitset.remove acc x)
          (Bitset.of_list (250 :: xs))
          [ 250 ]
      in
      Bitset.equal a b && Bitset.hash a = Bitset.hash b
      && Bitset.compare a b = 0)

let test_bitset_basics () =
  Alcotest.(check bool) "empty is empty" true (Bitset.is_empty Bitset.empty);
  let s = Bitset.of_list [ 3; 70; 3 ] in
  Alcotest.(check (list int)) "elements" [ 3; 70 ] (Bitset.elements s);
  Alcotest.(check bool) "singleton mem" true (Bitset.mem (Bitset.singleton 5) 5);
  Alcotest.(check bool) "remove to empty" true
    (Bitset.is_empty (Bitset.remove (Bitset.singleton 70) 70));
  Alcotest.(check int) "fold sum" 73 (Bitset.fold (fun x acc -> x + acc) s 0)

(* ---- symbol interner: ids are dense, stable, and round-trip *)

let test_symbol_interner () =
  let d = Mv_util.Symbol.create "test-domain" in
  let a = Mv_util.Symbol.intern d "alpha" in
  let b = Mv_util.Symbol.intern d "beta" in
  Alcotest.(check int) "dense ids" 1 b;
  Alcotest.(check int) "stable re-intern" a (Mv_util.Symbol.intern d "alpha");
  Alcotest.(check string) "round-trip" "beta" (Mv_util.Symbol.name d b);
  Alcotest.(check (option int)) "find hit" (Some a)
    (Mv_util.Symbol.find d "alpha");
  Alcotest.(check (option int)) "find miss" None
    (Mv_util.Symbol.find d "gamma");
  Alcotest.(check int) "size" 2 (Mv_util.Symbol.size d);
  Alcotest.check_raises "bad id"
    (Invalid_argument
       "Symbol.name: id 99 out of range for domain test-domain (size 2)")
    (fun () -> ignore (Mv_util.Symbol.name d 99))

let symbol_dense_prop =
  QCheck.Test.make ~name:"symbol: interning is a dense bijection" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (string_gen_of_size (Gen.int_range 0 6) Gen.printable))
    (fun strs ->
      let d = Mv_util.Symbol.create "prop-domain" in
      let ids = List.map (Mv_util.Symbol.intern d) strs in
      let distinct = List.sort_uniq compare strs in
      Mv_util.Symbol.size d = List.length distinct
      && List.for_all2
           (fun s i -> Mv_util.Symbol.name d i = s)
           strs ids
      && List.for_all (fun i -> i >= 0 && i < Mv_util.Symbol.size d) ids)

(* ---- bounded LRU ---- *)

module Lru = Mv_util.Lru

(* bindings most-recently-used first, like the fold order *)
let lru_entries l = List.rev (Lru.fold (fun k v acc -> (k, v) :: acc) l [])

let test_lru_basics () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:0));
  let l = Lru.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Lru.capacity l);
  Alcotest.(check (option int)) "empty find" None (Lru.find l "a");
  Alcotest.(check bool) "insert under capacity evicts nothing" true
    (Lru.set l "a" 1 = None && Lru.set l "b" 2 = None && Lru.set l "c" 3 = None);
  Alcotest.(check int) "length" 3 (Lru.length l);
  Alcotest.(check (option (pair string int))) "overflow evicts the LRU"
    (Some ("a", 1))
    (Lru.set l "d" 4);
  Alcotest.(check int) "length stays at capacity" 3 (Lru.length l);
  Alcotest.(check bool) "evicted key gone" false (Lru.mem l "a");
  Alcotest.(check (option int)) "survivor intact" (Some 2) (Lru.find l "b")

let test_lru_recency () =
  let l = Lru.create ~capacity:3 in
  List.iter (fun (k, v) -> ignore (Lru.set l k v)) [ ("a", 1); ("b", 2); ("c", 3) ];
  (* a find promotes: "a" is now the most recent, so "b" is the victim *)
  ignore (Lru.find l "a");
  Alcotest.(check (option (pair string int))) "find protects from eviction"
    (Some ("b", 2))
    (Lru.set l "d" 4);
  (* a peek must NOT promote: "c" (older than "a") is the next victim *)
  ignore (Lru.peek l "a");
  Alcotest.(check (option (pair string int))) "peek does not promote"
    (Some ("c", 3))
    (Lru.set l "e" 5)

let test_lru_replace_remove () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.set l "a" 1);
  ignore (Lru.set l "b" 2);
  Alcotest.(check (option (pair string int))) "replace evicts nothing" None
    (Lru.set l "a" 10);
  Alcotest.(check (option int)) "replace updates" (Some 10) (Lru.find l "a");
  Alcotest.(check bool) "remove present" true (Lru.remove l "b");
  Alcotest.(check bool) "remove absent" false (Lru.remove l "b");
  Alcotest.(check int) "one left" 1 (Lru.length l);
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.length l);
  Alcotest.(check (option int)) "cleared find" None (Lru.find l "a")

(* Model check: a capacity-c LRU behaves like a list of bindings kept in
   recency order, truncated to c. Ops shrink to minimal failing traces. *)
let lru_model_prop =
  QCheck.Test.make ~name:"lru: agrees with a recency-list model"
    ~count:(Helpers.qcheck_count 300)
    QCheck.(
      pair (int_range 1 5)
        (list_of_size (Gen.int_range 0 40)
           (pair (int_bound 2) (pair (int_bound 7) small_nat))))
    (fun (cap, ops) ->
      let l = Lru.create ~capacity:cap in
      let model = ref [] in
      List.iter
        (fun (kind, (k, v)) ->
          match kind with
          | 0 ->
              ignore (Lru.set l k v);
              let without = List.remove_assoc k !model in
              model := (k, v) :: List.filteri (fun i _ -> i < cap - 1) without
          | 1 -> (
              match (Lru.find l k, List.assoc_opt k !model) with
              | None, None -> ()
              | Some v', Some vm when v' = vm ->
                  model := (k, vm) :: List.remove_assoc k !model
              | got, want ->
                  QCheck.Test.fail_reportf "find %d: lru=%s model=%s" k
                    (match got with None -> "None" | Some v -> string_of_int v)
                    (match want with None -> "None" | Some v -> string_of_int v))
          | _ ->
              let was = Lru.remove l k in
              if was <> List.mem_assoc k !model then
                QCheck.Test.fail_reportf "remove %d disagrees" k;
              model := List.remove_assoc k !model)
        ops;
      lru_entries l = !model && Lru.length l = List.length !model)

let suite =
  [
    ( "util",
      [
        Helpers.qtest uf_prop;
        Alcotest.test_case "union-find classes" `Quick test_uf_classes;
        Alcotest.test_case "union-find copy isolation" `Quick test_uf_copy_isolated;
        Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
        Helpers.qtest prng_bounds_prop;
        Alcotest.test_case "prng roughly uniform" `Quick test_prng_uniformish;
        Alcotest.test_case "weighted pick" `Quick test_pick_weighted;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        Alcotest.test_case "string set helpers" `Quick test_sset_helpers;
        Helpers.qtest bitset_model_prop;
        Helpers.qtest bitset_norm_prop;
        Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
        Alcotest.test_case "symbol interner" `Quick test_symbol_interner;
        Helpers.qtest symbol_dense_prop;
        Alcotest.test_case "lru basics and eviction" `Quick test_lru_basics;
        Alcotest.test_case "lru recency: find promotes, peek does not" `Quick
          test_lru_recency;
        Alcotest.test_case "lru replace, remove, clear" `Quick
          test_lru_replace_remove;
        Helpers.qtest lru_model_prop;
      ] );
  ]
