(** Differential tests for incremental view maintenance ([Mv_engine.Ivm]):
    every batch-maintained view must end bag-equal to a from-scratch
    rematerialization of the same definition over the same (mutated) base
    tables.

    Two layers:
    - deterministic units over a tiny integer-valued star schema, where
      equality is exact: SPJ projection duplicates, join deltas (including
      a batch writing both join sides at once), count/sum groups with NULL
      inputs, group birth, deletion-to-zero removal, the scalar-aggregate
      single row, freshness epochs, statistics refresh, and the error
      paths;
    - a randomized property over section-5 generator views and TPC-H-style
      data, where float SUM columns compare within a relative tolerance
      (incremental maintenance reorders float additions; integer sums stay
      exact — DESIGN.md §12).

    [MVIEW_IVM_QUICK] shrinks the property case count for the CI quick
    pass. *)

module Spjg = Mv_relalg.Spjg
module Ivm = Mv_engine.Ivm
module DB = Mv_engine.Database
module Exec = Mv_engine.Exec
module Table = Mv_engine.Table
module V = Mv_base.Value
module Expr = Mv_base.Expr
module Pred = Mv_base.Pred

let quick = Sys.getenv_opt "MVIEW_IVM_QUICK" <> None

let col = Mv_base.Col.make

(* ---- the tiny star schema: integer-valued, one nullable column ---- *)

let tiny_schema =
  let open Mv_catalog in
  Schema.make
    ~tables:
      [
        Table_def.make ~name:"dim"
          ~columns:
            [ Column.make "d_id" Mv_base.Dtype.Int;
              Column.make "d_grp" Mv_base.Dtype.Str ]
          ~primary_key:[ "d_id" ] ();
        Table_def.make ~name:"fact"
          ~columns:
            [ Column.make "f_id" Mv_base.Dtype.Int;
              Column.make "f_dim" Mv_base.Dtype.Int;
              Column.make ~nullable:true "f_val" Mv_base.Dtype.Int;
              Column.make "f_qty" Mv_base.Dtype.Int ]
          ~primary_key:[ "f_id" ] ();
      ]
    ~foreign_keys:
      [
        Foreign_key.make ~from_tbl:"fact" ~from_cols:[ "f_dim" ] ~to_tbl:"dim"
          ~to_cols:[ "d_id" ];
      ]

let dim_rows =
  [
    [| V.Int 1; V.Str "a" |]; [| V.Int 2; V.Str "b" |]; [| V.Int 3; V.Str "c" |];
  ]

let fact_rows =
  [
    [| V.Int 1; V.Int 1; V.Int 10; V.Int 2 |];
    [| V.Int 2; V.Int 1; V.Null; V.Int 3 |];
    [| V.Int 3; V.Int 2; V.Int 5; V.Int 1 |];
    [| V.Int 4; V.Int 2; V.Int 7; V.Int 4 |];
  ]

let tiny_db () =
  let db = DB.create tiny_schema in
  List.iter (DB.insert db "dim") dim_rows;
  List.iter (DB.insert db "fact") fact_rows;
  db

let mkview name ~tables ~where ~group_by ~out =
  Mv_core.View.create tiny_schema ~name
    (Spjg.make ~tables ~where ~group_by ~out)

let eq a b = Pred.Cmp (Pred.Eq, a, b)

let c_dgrp = Expr.Col (col "dim" "d_grp")
let c_did = Expr.Col (col "dim" "d_id")
let c_fdim = Expr.Col (col "fact" "f_dim")
let c_fval = Expr.Col (col "fact" "f_val")
let c_fqty = Expr.Col (col "fact" "f_qty")

(* ---- differential scaffolding ---- *)

let view_rows db name = (DB.table_exn db name).Table.rows

(* Apply the batch the rematerialization way: write the base tables, then
   recompute every affected view from scratch. *)
let remat_apply db views (batch : Ivm.batch) =
  List.iter
    (fun (tn, (d : Ivm.delta)) ->
      List.iter (DB.insert db tn) d.Ivm.ins;
      List.iter (DB.delete db tn) d.Ivm.del)
    batch;
  List.iter
    (fun (v : Mv_core.View.t) ->
      if
        List.exists
          (fun (tn, _) -> Mv_util.Sset.mem tn v.Mv_core.View.source_tables)
          batch
      then ignore (Exec.materialize db v))
    views

let check_exact msg dba dbb name =
  let rel rows = { Mv_engine.Relation.cols = []; rows } in
  Alcotest.(check bool) msg true
    (Mv_engine.Relation.same_bag
       (rel (view_rows dba name))
       (rel (view_rows dbb name)))

(* Run the same batches through both arms over twin tiny databases,
   checking the view after every batch; returns the delta-arm engine and
   database for extra assertions. *)
let differential view (batches : Ivm.batch list) =
  let dba = tiny_db () and dbb = tiny_db () in
  ignore (Exec.materialize dba view);
  ignore (Exec.materialize dbb view);
  let ivm = Ivm.create dba in
  Ivm.attach ivm view;
  List.iteri
    (fun i batch ->
      Ivm.apply ivm batch;
      remat_apply dbb [ view ] batch;
      check_exact
        (Printf.sprintf "%s: batch %d maintained = rematerialized"
           view.Mv_core.View.name i)
        dba dbb view.Mv_core.View.name)
    batches;
  (ivm, dba)

let ins rows = { Ivm.ins = rows; del = [] }
let del rows = { Ivm.ins = []; del = rows }

(* ---- SPJ: projection duplicates, bag deletes ---- *)

let test_spj_duplicates () =
  (* projecting f_id away makes duplicates: rows 1 and 2 both emit
     (1, ...) patterns once filtered *)
  let view =
    mkview "iv_spj" ~tables:[ "fact" ]
      ~where:[ Pred.Cmp (Pred.Ge, c_fqty, Expr.Const (V.Int 2)) ]
      ~group_by:None
      ~out:
        [ Spjg.scalar "f_dim" c_fdim; Spjg.scalar "f_qty" c_fqty ]
  in
  let dup = [| V.Int 9; V.Int 1; V.Int 99; V.Int 2 |] in
  let ivm, dba =
    differential view
      [
        (* two inserts producing identical output rows: the view must gain
           two instances *)
        [ ("fact", ins [ dup; [| V.Int 10; V.Int 1; V.Null; V.Int 2 |] ]) ];
        (* delete one of the two (1, 2) sources: exactly one instance goes *)
        [ ("fact", del [ dup ]) ];
        (* a row below the predicate threshold must not surface *)
        [ ("fact", ins [ [| V.Int 11; V.Int 3; V.Int 1; V.Int 1 |] ]) ];
      ]
  in
  Alcotest.(check int) "two (1,2) instances after the dup batch remain one" 2
    (List.length
       (List.filter (fun r -> r = [| V.Int 1; V.Int 2 |]) (view_rows dba "iv_spj")));
  Alcotest.(check bool) "view stays fresh" false
    (Mv_core.View.is_stale (List.hd (Ivm.attached ivm)))

(* ---- join deltas, including both sides written in one batch ---- *)

let test_join_delta () =
  let view =
    mkview "iv_join" ~tables:[ "dim"; "fact" ]
      ~where:[ eq c_fdim c_did ]
      ~group_by:None
      ~out:[ Spjg.scalar "d_grp" c_dgrp; Spjg.scalar "f_qty" c_fqty ]
  in
  ignore
    (differential view
       [
         (* fact-side delta joins existing dim rows *)
         [ ("fact", ins [ [| V.Int 20; V.Int 2; V.Int 1; V.Int 7 |] ]) ];
         (* dim-side delta joins existing fact rows (d_id 1 has two) *)
         [ ("dim", del [ [| V.Int 3; V.Str "c" |] ]) ];
         (* both sides in one batch: the new fact references the new dim —
            only the telescoping cross term produces this pair *)
         [
           ("dim", ins [ [| V.Int 4; V.Str "d" |] ]);
           ("fact", ins [ [| V.Int 21; V.Int 4; V.Int 2; V.Int 8 |] ]);
         ];
         (* and tear the pair down again in one batch *)
         [
           ("fact", del [ [| V.Int 21; V.Int 4; V.Int 2; V.Int 8 |] ]);
           ("dim", del [ [| V.Int 4; V.Str "d" |] ]);
         ];
       ])

(* ---- aggregation: counts, NULL-skipping sums, birth and death ---- *)

let agg_view name =
  mkview name ~tables:[ "dim"; "fact" ]
    ~where:[ eq c_fdim c_did ]
    ~group_by:(Some [ c_dgrp ])
    ~out:
      [
        Spjg.scalar "d_grp" c_dgrp;
        Spjg.aggregate "cnt" Spjg.Count_star;
        Spjg.aggregate "sv" (Spjg.Sum c_fval);
        Spjg.aggregate "sq" (Spjg.Sum c_fqty);
      ]

let find_group db name key =
  List.find_opt (fun r -> r.(0) = key) (view_rows db name)

let test_agg_groups () =
  let view = agg_view "iv_agg" in
  let _, dba =
    differential view
      [
        (* count up, sum up: group "a" gains a row with a NULL f_val — the
           count moves, the sum must not *)
        [ ("fact", ins [ [| V.Int 30; V.Int 1; V.Null; V.Int 5 |] ]) ];
        (* delete group "a"'s only non-null f_val contributor: the stored
           SUM returns to NULL while the count stays positive *)
        [ ("fact", del [ [| V.Int 1; V.Int 1; V.Int 10; V.Int 2 |] ]) ];
        (* group birth: dim "c" has no facts until this batch *)
        [ ("fact", ins [ [| V.Int 31; V.Int 3; V.Int 4; V.Int 6 |] ]) ];
        (* deletion to zero: both of group "b"'s facts go; the row must
           vanish, not linger with count 0 *)
        [
          ("fact",
           del
             [
               [| V.Int 3; V.Int 2; V.Int 5; V.Int 1 |];
               [| V.Int 4; V.Int 2; V.Int 7; V.Int 4 |];
             ]);
        ];
      ]
  in
  (match find_group dba "iv_agg" (V.Str "a") with
  | Some r ->
      Alcotest.(check bool) "a: count 2, sum NULL (all inputs NULL)" true
        (r.(1) = V.Int 2 && r.(2) = V.Null && r.(3) = V.Int 8)
  | None -> Alcotest.fail "group a must survive");
  (match find_group dba "iv_agg" (V.Str "c") with
  | Some r ->
      Alcotest.(check bool) "c: born with count 1" true (r.(1) = V.Int 1)
  | None -> Alcotest.fail "group c must be born");
  Alcotest.(check bool) "b: removed at count zero" true
    (find_group dba "iv_agg" (V.Str "b") = None)

(* ---- UPDATE as delete+insert sugar (Ivm.updates) ---- *)

let test_updates () =
  let r1 = [| V.Int 1; V.Int 1; V.Int 10; V.Int 2 |] in
  let r1' = [| V.Int 1; V.Int 1; V.Int 99; V.Int 2 |] in
  let r3 = [| V.Int 3; V.Int 2; V.Int 5; V.Int 1 |] in
  let r3' = [| V.Int 3; V.Int 1; V.Int 5; V.Int 1 |] in
  let r4 = [| V.Int 4; V.Int 2; V.Int 7; V.Int 4 |] in
  (* field mapping: del carries the before-images, ins the after-images;
     identical (no-op) pairs are kept on both sides *)
  let d = Ivm.updates [ (r1, r1'); (r4, r4) ] in
  Alcotest.(check bool) "del = befores, ins = afters" true
    (d.Ivm.del = [ r1; r4 ] && d.Ivm.ins = [ r1'; r4 ]);
  let view = agg_view "iv_upd" in
  let _, dba =
    differential view
      [
        (* in-place value change: group "a"'s sum must move 10 -> 99 *)
        [ ("fact", Ivm.updates [ (r1, r1') ]) ];
        (* cross-group move: fact 3 migrates from dim 2 to dim 1; a no-op
           pair rides along and must change nothing *)
        [ ("fact", Ivm.updates [ (r3, r3'); (r4, r4) ]) ];
      ]
  in
  (match find_group dba "iv_upd" (V.Str "a") with
  | Some r ->
      Alcotest.(check bool) "a: count 3, sum 99+5, qty 2+3+1" true
        (r.(1) = V.Int 3 && r.(2) = V.Int 104 && r.(3) = V.Int 6)
  | None -> Alcotest.fail "group a must survive the updates");
  match find_group dba "iv_upd" (V.Str "b") with
  | Some r ->
      Alcotest.(check bool) "b: down to fact 4 only" true
        (r.(1) = V.Int 1 && r.(2) = V.Int 7 && r.(3) = V.Int 4)
  | None -> Alcotest.fail "group b must keep fact 4"

(* ---- the scalar aggregate: its single row never dies ---- *)

let test_scalar_agg () =
  let view =
    mkview "iv_scalar" ~tables:[ "fact" ] ~where:[] ~group_by:(Some [])
      ~out:
        [
          Spjg.aggregate "cnt" Spjg.Count_star;
          Spjg.aggregate "sv" (Spjg.Sum c_fval);
        ]
  in
  let _, dba =
    differential view
      [
        [ ("fact", ins [ [| V.Int 40; V.Int 1; V.Int 100; V.Int 1 |] ]) ];
        (* empty the table entirely: SQL still returns one row,
           count 0 and a NULL sum *)
        [
          ("fact",
           del ([ [| V.Int 40; V.Int 1; V.Int 100; V.Int 1 |] ] @ fact_rows));
        ];
      ]
  in
  match view_rows dba "iv_scalar" with
  | [ r ] ->
      Alcotest.(check bool) "count 0, sum NULL over empty input" true
        (r.(0) = V.Int 0 && r.(1) = V.Null)
  | rows ->
      Alcotest.failf "scalar aggregate must keep exactly one row, got %d"
        (List.length rows)

(* ---- freshness epochs and view-level statistics refresh ---- *)

let test_freshness_and_stats () =
  let view = agg_view "iv_stats" in
  let dba = tiny_db () in
  ignore (Exec.materialize dba view);
  let stats0 = DB.stats dba in
  let ivm = Ivm.create dba in
  Ivm.attach ivm view;
  Alcotest.(check bool) "fresh after attach" false (Mv_core.View.is_stale view);
  let e0 = DB.table_epoch dba "fact" in
  Ivm.apply ivm
    [ ("fact", ins [ [| V.Int 50; V.Int 3; V.Int 2; V.Int 9 |] ]) ];
  Alcotest.(check bool) "base epoch advanced" true (DB.table_epoch dba "fact" > e0);
  Alcotest.(check int) "freshness re-stamped at the new epochs"
    (DB.table_epoch dba "fact")
    (List.assoc "fact" view.Mv_core.View.base_epochs);
  Alcotest.(check bool) "still fresh after maintenance" false
    (Mv_core.View.is_stale view);
  (* the descriptor's row count tracks the maintained contents (group "c"
     was just born) *)
  Alcotest.(check int) "descriptor row count tracks the delta"
    (DB.row_count dba "iv_stats")
    view.Mv_core.View.row_count;
  (* mark-and-rebuild statistics: the dirty view gets a rebuilt entry *)
  Alcotest.(check (list string)) "dirty after apply" [ "iv_stats" ]
    (Ivm.dirty_views ivm);
  let stats1 = Ivm.refresh_stats ivm stats0 in
  Alcotest.(check int) "stats row count tracks post-delta cardinality"
    (DB.row_count dba "iv_stats")
    (Mv_catalog.Stats.row_count stats1 "iv_stats");
  Alcotest.(check bool) "refreshed entry carries column stats" true
    (Mv_catalog.Stats.col_stats stats1 (col "iv_stats" "cnt") <> None);
  Alcotest.(check (list string)) "refresh clears the dirty set" []
    (Ivm.dirty_views ivm);
  (* untouched base entries pass through unchanged *)
  Alcotest.(check int) "base entries untouched"
    (Mv_catalog.Stats.row_count stats0 "dim")
    (Mv_catalog.Stats.row_count stats1 "dim")

(* ---- error paths ---- *)

let test_errors () =
  let view = agg_view "iv_err" in
  let dba = tiny_db () in
  let ivm = Ivm.create dba in
  Alcotest.check_raises "attach requires materialization"
    (Invalid_argument "Ivm.attach: view iv_err is not materialized")
    (fun () -> Ivm.attach ivm view);
  ignore (Exec.materialize dba view);
  Ivm.attach ivm view;
  Alcotest.check_raises "no double attach"
    (Invalid_argument "Ivm.attach: view iv_err already attached") (fun () ->
      Ivm.attach ivm view);
  Alcotest.check_raises "a view's own table cannot be written"
    (Invalid_argument "Ivm.apply: iv_err is an attached view's table")
    (fun () -> Ivm.apply ivm [ ("iv_err", ins [ [||] ]) ]);
  Alcotest.check_raises "arity is validated before any write"
    (Invalid_argument "Ivm.apply: row arity mismatch for fact") (fun () ->
      Ivm.apply ivm [ ("fact", ins [ [| V.Int 1 |] ]) ]);
  (match
     Ivm.apply ivm
       [ ("fact", del [ [| V.Int 99; V.Int 1; V.Null; V.Int 1 |] ]) ]
   with
  | () -> Alcotest.fail "deleting an absent row must raise"
  | exception Invalid_argument _ -> ());
  Ivm.detach ivm "iv_err";
  Alcotest.(check int) "detached" 0 (List.length (Ivm.attached ivm))

(* ---- the randomized differential property ---- *)

let tpch_schema = Helpers.schema

let gen_views =
  lazy
    (List.filter_map
       (fun (name, spjg) ->
         match Mv_core.View.create tpch_schema ~name spjg with
         | v -> Some v
         | exception Mv_core.View.Rejected _ -> None)
       (Mv_workload.Generator.views ~seed:909 tpch_schema
          (Mv_tpch.Datagen.synthetic_stats ())
          50))

(* Float SUM columns may drift by rounding between the incremental and the
   from-scratch arm; compare with a relative tolerance. *)
let value_close a b =
  match (a, b) with
  | V.Float x, V.Float y ->
      x = y || abs_float (x -. y) <= 1e-9 *. (abs_float x +. abs_float y +. 1.0)
  | _ -> V.order a b = 0

let bag_close rows_a rows_b =
  List.length rows_a = List.length rows_b
  && List.for_all2
       (fun (x : V.t array) y ->
         Array.length x = Array.length y && Array.for_all2 value_close x y)
       (List.sort Mv_engine.Relation.row_order rows_a)
       (List.sort Mv_engine.Relation.row_order rows_b)

(* Mutate one random Int column of the row — shared by the insert and
   update batch generators below. *)
let mutate_row prng (tbl : Table.t) row =
  let row = Array.copy row in
  let ints =
    tbl.Table.def.Mv_catalog.Table_def.columns
    |> List.mapi (fun i (c : Mv_catalog.Column.t) -> (i, c))
    |> List.filter (fun (_, (c : Mv_catalog.Column.t)) ->
           c.Mv_catalog.Column.dtype = Mv_base.Dtype.Int)
  in
  (match ints with
  | [] -> ()
  | _ ->
      let i, _ = Mv_util.Prng.pick prng ints in
      row.(i) <- V.Int (Mv_util.Prng.int prng 1000));
  row

(* A random batch over one of the view's source tables: duplicates of
   existing rows (foreign keys keep holding — join deltas fire), mutated
   duplicates (fresh values birth new groups), and deletes of distinct
   existing row instances. *)
let random_batch prng db (view : Mv_core.View.t) : Ivm.batch =
  let tn = Mv_util.Prng.pick prng (Mv_util.Sset.elements view.Mv_core.View.source_tables) in
  let tbl = DB.table_exn db tn in
  let rows = tbl.Table.rows in
  let n = List.length rows in
  if n = 0 then []
  else begin
    let pick () = List.nth rows (Mv_util.Prng.int prng n) in
    let mutate = mutate_row prng tbl in
    let n_ins = 1 + Mv_util.Prng.int prng 4 in
    let ins =
      List.init n_ins (fun _ ->
          let r = pick () in
          if Mv_util.Prng.chance prng 0.3 then mutate r else r)
    in
    let n_del = Mv_util.Prng.int prng (1 + (n / 4)) in
    let del =
      List.filteri (fun i _ -> i < n_del) (Mv_util.Prng.shuffle prng rows)
    in
    [ (tn, { Ivm.ins; del }) ]
  end

(* A random UPDATE batch: distinct existing row instances as the
   before-images, each after-image a mutation of its before-image (or
   sometimes the identity, exercising the kept no-op pairs). *)
let random_update_batch prng db (view : Mv_core.View.t) : Ivm.batch =
  let tn = Mv_util.Prng.pick prng (Mv_util.Sset.elements view.Mv_core.View.source_tables) in
  let tbl = DB.table_exn db tn in
  let rows = tbl.Table.rows in
  let n = List.length rows in
  if n = 0 then []
  else begin
    let k = 1 + Mv_util.Prng.int prng (min 4 n) in
    let befores =
      List.filteri (fun i _ -> i < k) (Mv_util.Prng.shuffle prng rows)
    in
    let pairs =
      List.map
        (fun r ->
          if Mv_util.Prng.chance prng 0.2 then (r, r)
          else (r, mutate_row prng tbl r))
        befores
    in
    [ (tn, Ivm.updates pairs) ]
  end

let count = Helpers.qcheck_count (if quick then 10 else 40)

let differential_prop =
  QCheck.Test.make ~name:"random views: maintained = rematerialized" ~count
    QCheck.(triple (int_bound 1_000_000) (int_range 1 3) (int_bound 1_000_000))
    (fun (pick, db_seed, batch_seed) ->
      let views = Lazy.force gen_views in
      let view = List.nth views (pick mod List.length views) in
      let db0 = Mv_tpch.Datagen.generate ~seed:db_seed ~scale:1 () in
      let dba = DB.copy db0 and dbb = DB.copy db0 in
      ignore (Exec.materialize dba view);
      ignore (Exec.materialize dbb view);
      let ivm = Ivm.create dba in
      Ivm.attach ivm view;
      let prng = Mv_util.Prng.create batch_seed in
      let ok = ref true in
      for _ = 1 to 3 do
        let batch = random_batch prng dba view in
        Ivm.apply ivm batch;
        remat_apply dbb [ view ] batch;
        if
          not
            (bag_close
               (view_rows dba view.Mv_core.View.name)
               (view_rows dbb view.Mv_core.View.name))
        then ok := false
      done;
      !ok)

let updates_prop =
  QCheck.Test.make ~name:"random updates: maintained = rematerialized" ~count
    QCheck.(triple (int_bound 1_000_000) (int_range 1 3) (int_bound 1_000_000))
    (fun (pick, db_seed, batch_seed) ->
      let views = Lazy.force gen_views in
      let view = List.nth views (pick mod List.length views) in
      let db0 = Mv_tpch.Datagen.generate ~seed:db_seed ~scale:1 () in
      let dba = DB.copy db0 and dbb = DB.copy db0 in
      ignore (Exec.materialize dba view);
      ignore (Exec.materialize dbb view);
      let ivm = Ivm.create dba in
      Ivm.attach ivm view;
      let prng = Mv_util.Prng.create batch_seed in
      let ok = ref true in
      for _ = 1 to 3 do
        let batch = random_update_batch prng dba view in
        Ivm.apply ivm batch;
        remat_apply dbb [ view ] batch;
        if
          not
            (bag_close
               (view_rows dba view.Mv_core.View.name)
               (view_rows dbb view.Mv_core.View.name))
        then ok := false
      done;
      !ok)

let suite =
  [
    ( "ivm_units",
      [
        Alcotest.test_case "SPJ projection duplicates" `Quick
          test_spj_duplicates;
        Alcotest.test_case "join deltas, both sides in one batch" `Quick
          test_join_delta;
        Alcotest.test_case "aggregate groups: NULL sums, birth, death" `Quick
          test_agg_groups;
        Alcotest.test_case "UPDATE as delete+insert sugar" `Quick
          test_updates;
        Alcotest.test_case "scalar aggregate keeps its single row" `Quick
          test_scalar_agg;
        Alcotest.test_case "freshness epochs + statistics refresh" `Quick
          test_freshness_and_stats;
        Alcotest.test_case "error paths" `Quick test_errors;
      ] );
    ( "ivm_diff",
      [ Helpers.qtest differential_prop; Helpers.qtest updates_prop ] );
  ]
