(** Histogram statistics: the equi-depth invariants of
    [Stats.build_column], selectivity-vs-brute-force bounds for the
    histogram and MCV estimation paths, edge cases (empty / all-null /
    constant columns), and the observable missing-statistics fallback of
    [Stats.row_count]. *)

open Mv_base
module Stats = Mv_catalog.Stats

let nonnull values = List.filter (fun v -> not (Value.is_null v)) values

(* Integer columns with occasional NULLs, heavy duplication (domain
   0..100) so runs, MCVs and boundary alignment are all exercised. *)
let gen_col =
  QCheck.make
    ~print:(fun vs -> String.concat ";" (List.map Value.to_string vs))
    QCheck.Gen.(
      list_size (0 -- 400)
        (frequency
           [
             (9, map (fun n -> Value.Int n) (0 -- 100));
             (1, return Value.Null);
           ]))

let buckets = 8

let invariants_prop =
  QCheck.Test.make ~name:"stats: equi-depth histogram invariants"
    ~count:(Helpers.qcheck_count 300) gen_col (fun values ->
      let cs = Stats.build_column ~buckets ~mcv_limit:16 values in
      let nn = nonnull values in
      let n = List.length nn in
      (match cs.Stats.hist with
      | None ->
          (* only empty or (near-)constant columns may omit the histogram *)
          if cs.Stats.ndv > 1 then
            QCheck.Test.fail_reportf "no histogram despite ndv=%d"
              cs.Stats.ndv
      | Some h ->
          let nb = Array.length h.Stats.h_bounds in
          if nb = 0 || nb <> Array.length h.Stats.h_counts then
            QCheck.Test.fail_reportf "bad shape: %d bounds / %d counts" nb
              (Array.length h.Stats.h_counts);
          if nb > buckets + 1 then
            QCheck.Test.fail_reportf "%d buckets exceeds the budget" nb;
          if Stats.hist_total h <> n then
            QCheck.Test.fail_reportf "counts sum to %d, expected %d"
              (Stats.hist_total h) n;
          Array.iter
            (fun c ->
              if c <= 0 then QCheck.Test.fail_reportf "empty bucket")
            h.Stats.h_counts;
          for i = 1 to nb - 1 do
            if Value.order h.Stats.h_bounds.(i - 1) h.Stats.h_bounds.(i) >= 0
            then QCheck.Test.fail_reportf "bounds not strictly increasing"
          done;
          if Value.order h.Stats.h_lo cs.Stats.min_v <> 0 then
            QCheck.Test.fail_reportf "h_lo is not the column minimum";
          if Value.order h.Stats.h_bounds.(nb - 1) cs.Stats.max_v <> 0 then
            QCheck.Test.fail_reportf "last bound is not the column maximum");
      (* exhaustive MCVs for low-NDV columns: every distinct value, exact
         multiplicities, heaviest first *)
      (if cs.Stats.ndv <= 16 && n > 0 then
         match cs.Stats.mcvs with
         | [] -> QCheck.Test.fail_reportf "no MCVs despite ndv <= limit"
         | mcvs ->
             if List.length mcvs <> cs.Stats.ndv then
               QCheck.Test.fail_reportf "MCV list is not exhaustive";
             if List.fold_left (fun a (_, c) -> a + c) 0 mcvs <> n then
               QCheck.Test.fail_reportf "MCV counts do not sum to rows";
             let rec desc = function
               | (_, a) :: ((_, b) :: _ as tl) -> a >= b && desc tl
               | _ -> true
             in
             if not (desc mcvs) then
               QCheck.Test.fail_reportf "MCVs not sorted by count");
      true)

(* Wrap one column as a full statistics table for the selectivity API. *)
let stats_of values =
  let cs = Stats.build_column ~buckets ~mcv_limit:128 values in
  let n = List.length (nonnull values) in
  ([ ("t", { Stats.row_count = n; columns = [ ("c", cs) ] }) ], n)

let the_col = Col.make "t" "c"

let brute values op c =
  let sat v =
    match Value.cmp3 v (Value.Int c) with
    | None -> false
    | Some d -> (
        match (op : Pred.cmp) with
        | Pred.Eq -> d = 0
        | Pred.Ne -> d <> 0
        | Pred.Lt -> d < 0
        | Pred.Le -> d <= 0
        | Pred.Gt -> d > 0
        | Pred.Ge -> d >= 0)
  in
  let nn = nonnull values in
  match nn with
  | [] -> None
  | _ ->
      Some
        (float_of_int (List.length (List.filter sat nn))
        /. float_of_int (List.length nn))

let gen_range =
  QCheck.pair gen_col
    (QCheck.pair
       (QCheck.oneofl [ Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ])
       QCheck.(int_range (-10) 110))

(* A range estimate from an equi-depth histogram is off by at most the
   containing bucket's share of the rows (one bucket's depth, plus the
   clamp floor). *)
let range_prop =
  QCheck.Test.make ~name:"stats: range selectivity within one bucket depth"
    ~count:(Helpers.qcheck_count 300) gen_range
    (fun (values, (op, c)) ->
      let stats, n = stats_of values in
      match brute values op c with
      | None -> true
      | Some frac ->
          let est = Stats.range_selectivity stats the_col op (Value.Int c) in
          let depth = (n + buckets - 1) / buckets in
          let tol = (2.0 *. float_of_int depth /. float_of_int n) +. 0.02 in
          if Float.abs (est -. frac) > tol then
            QCheck.Test.fail_reportf
              "op=%s c=%d: estimated %.4f, actual %.4f, tolerance %.4f"
              (match op with
              | Pred.Lt -> "<"
              | Pred.Le -> "<="
              | Pred.Gt -> ">"
              | Pred.Ge -> ">="
              | _ -> "?")
              c est frac tol
          else true)

(* Equality and inequality against an exhaustive MCV list are exact (up
   to the 0.0001 clamp floor). *)
let eq_prop =
  QCheck.Test.make ~name:"stats: Eq/Ne selectivity exact on exhaustive MCVs"
    ~count:(Helpers.qcheck_count 300)
    (QCheck.pair gen_col QCheck.(int_range (-10) 110))
    (fun (values, c) ->
      let stats, _ = stats_of values in
      match brute values Pred.Eq c with
      | None -> true
      | Some frac ->
          let est = Stats.range_selectivity stats the_col Pred.Eq (Value.Int c) in
          let est_ne =
            Stats.range_selectivity stats the_col Pred.Ne (Value.Int c)
          in
          Float.abs (est -. Float.max frac 0.0001) <= 0.0005
          && Float.abs (est_ne -. Float.max (1.0 -. frac) 0.0001) <= 0.0005)

(* ---- edge cases ---- *)

let test_empty_column () =
  let cs = Stats.build_column [] in
  Alcotest.(check int) "ndv" 0 cs.Stats.ndv;
  Alcotest.(check bool) "no hist" true (cs.Stats.hist = None);
  Alcotest.(check bool) "no mcvs" true (cs.Stats.mcvs = []);
  Alcotest.(check bool) "null min" true (Value.is_null cs.Stats.min_v)

let test_all_null_column () =
  let cs = Stats.build_column [ Value.Null; Value.Null ] in
  Alcotest.(check int) "ndv" 0 cs.Stats.ndv;
  Alcotest.(check bool) "no hist" true (cs.Stats.hist = None)

let test_constant_column () =
  let cs = Stats.build_column (List.init 10 (fun _ -> Value.Int 7)) in
  Alcotest.(check int) "ndv" 1 cs.Stats.ndv;
  Alcotest.(check bool) "no hist" true (cs.Stats.hist = None);
  Alcotest.(check bool) "exhaustive mcv" true
    (cs.Stats.mcvs = [ (Value.Int 7, 10) ]);
  (* equality on the single value is certain; on any other value ~zero *)
  let stats = [ ("t", { Stats.row_count = 10; columns = [ ("c", cs) ] }) ] in
  Alcotest.(check (float 0.0001))
    "hit" 1.0
    (Stats.range_selectivity stats the_col Pred.Eq (Value.Int 7));
  Alcotest.(check (float 0.0002))
    "miss" 0.0001
    (Stats.range_selectivity stats the_col Pred.Eq (Value.Int 8))

(* Runs never straddle bucket boundaries, even under heavy skew. *)
let test_no_straddle () =
  let values =
    List.init 90 (fun _ -> Value.Int 1) @ List.init 10 (fun i -> Value.Int (2 + i))
  in
  let cs = Stats.build_column ~buckets:4 values in
  match cs.Stats.hist with
  | None -> Alcotest.fail "expected a histogram"
  | Some h ->
      (* the run of 90 ones must land in exactly one bucket *)
      Alcotest.(check int) "first bucket holds the run" 90 h.Stats.h_counts.(0);
      Alcotest.(check bool) "first bound is 1" true
        (Value.order h.Stats.h_bounds.(0) (Value.Int 1) = 0)

let test_missing_table_observable () =
  let gval = Mv_obs.Registry.counter_value Mv_obs.Registry.global in
  let before = gval "cost.stats.missing" in
  Alcotest.(check int)
    "default row count" Stats.default_row_count
    (Stats.row_count [] "no_such_table");
  Alcotest.(check int)
    "missing counter bumped" (before + 1)
    (gval "cost.stats.missing");
  (* a known table does not touch the counter *)
  let stats = [ ("t", { Stats.row_count = 5; columns = [] }) ] in
  Alcotest.(check int) "known row count" 5 (Stats.row_count stats "t");
  Alcotest.(check int)
    "counter unchanged" (before + 1)
    (gval "cost.stats.missing")

(* Regression for the bench --exec q_bigcust q-error: a view over
   correlated predicates whose analytic estimate (independence
   assumption) is badly off. Materializing through
   [Exec.materialize_stats] must record view-level statistics that
   [Cost.estimate_view_rows ~name] then prefers over the analytic
   model. *)
let test_view_level_stats () =
  let schema =
    let open Mv_catalog in
    Schema.make
      ~tables:
        [
          Table_def.make ~name:"t"
            ~columns:
              [ Column.make "a" Dtype.Int; Column.make "b" Dtype.Int ]
            ~primary_key:[ "a" ] ();
        ]
      ~foreign_keys:[]
  in
  let db = Mv_engine.Database.create schema in
  for i = 0 to 199 do
    (* a and b perfectly correlated: both predicates below select the
       same 100 rows, but independence multiplies the selectivities *)
    Mv_engine.Database.insert db "t" [| Value.Int i; Value.Int i |]
  done;
  let stats = [ ("t", Mv_engine.Database.table_stats db "t") ] in
  let ca = Expr.Col (Col.make "t" "a") in
  let cb = Expr.Col (Col.make "t" "b") in
  let spjg =
    Mv_relalg.Spjg.make ~tables:[ "t" ]
      ~where:
        [
          Pred.Cmp (Pred.Ge, ca, Expr.Const (Value.Int 100));
          Pred.Cmp (Pred.Ge, cb, Expr.Const (Value.Int 100));
        ]
      ~group_by:None
      ~out:[ Mv_relalg.Spjg.scalar "a" ca ]
  in
  let view = Mv_core.View.create schema ~name:"corr_v" spjg in
  let analytic = Mv_opt.Cost.estimate_view_rows ~name:"corr_v" stats spjg in
  let tbl, stats' = Mv_engine.Exec.materialize_stats db view stats in
  let actual = List.length tbl.Mv_engine.Table.rows in
  Alcotest.(check int) "the correlated slice holds 100 rows" 100 actual;
  Alcotest.(check bool)
    (Printf.sprintf "analytic estimate is off (%d vs %d)" analytic actual)
    true
    (abs (analytic - actual) > actual / 4);
  Alcotest.(check int) "measured stats win after materialization" actual
    (Mv_opt.Cost.estimate_view_rows ~name:"corr_v" stats' spjg);
  (* without the view name, the analytic path must still answer *)
  Alcotest.(check int) "analytic path untouched" analytic
    (Mv_opt.Cost.estimate_view_rows stats' spjg)

let suite =
  [
    ( "prop_stats",
      [
        Helpers.qtest invariants_prop;
        Helpers.qtest range_prop;
        Helpers.qtest eq_prop;
        Alcotest.test_case "empty column" `Quick test_empty_column;
        Alcotest.test_case "all-null column" `Quick test_all_null_column;
        Alcotest.test_case "constant column" `Quick test_constant_column;
        Alcotest.test_case "runs never straddle buckets" `Quick
          test_no_straddle;
        Alcotest.test_case "missing table is observable" `Quick
          test_missing_table_observable;
        Alcotest.test_case "view-level stats beat the analytic estimate"
          `Quick test_view_level_stats;
      ] );
  ]
