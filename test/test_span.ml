(** The span subsystem: collector lifecycle, scoped threading, the
    monotone clock, the text renderer, and the Chrome/Perfetto
    [trace_event] export — including an end-to-end traced optimize run
    whose tree must carry the pipeline's span names and per-view match
    verdicts. *)

module Span = Mv_obs.Span
module J = Mv_obs.Json

let schema = Mv_tpch.Schema.schema

let test_lifecycle () =
  let col = Span.create () in
  let a = Span.start col "a" in
  let b = Span.start col ~parent:a "b" in
  Span.add_attrs col b [ ("k", Span.Int 7) ];
  Span.finish col b;
  Span.finish col a;
  match Span.spans col with
  | [ sa; sb ] ->
      Alcotest.(check int) "ids from 1" 1 sa.Span.id;
      Alcotest.(check int) "a is a root" 0 sa.Span.parent;
      Alcotest.(check int) "b under a" a sb.Span.parent;
      Alcotest.(check bool) "b closed" true (sb.Span.dur >= 0.0);
      Alcotest.(check bool) "a closed" true (sa.Span.dur >= 0.0);
      Alcotest.(check bool) "attr kept" true
        (List.mem_assoc "k" sb.Span.attrs)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l))

let test_finish_idempotent () =
  let col = Span.create () in
  let a = Span.start col "a" in
  Span.finish col a;
  let d1 = (List.hd (Span.spans col)).Span.dur in
  Span.finish col a;
  let d2 = (List.hd (Span.spans col)).Span.dur in
  Alcotest.(check (float 0.0)) "second finish keeps the first duration" d1 d2;
  (* the sink never throws into the pipeline: unknown ids are ignored *)
  Span.add_attrs col 999 [ ("x", Span.Bool true) ];
  Span.finish col 999;
  Alcotest.(check int) "unknown ids ignored" 1 (List.length (Span.spans col))

let test_monotone_timestamps () =
  let col = Span.create () in
  let ids =
    List.init 20 (fun i ->
        let id = Span.start col (Printf.sprintf "s%d" i) in
        Span.finish col id;
        id)
  in
  ignore ids;
  let ts = List.map (fun s -> s.Span.ts) (Span.spans col) in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps never step backwards" true (monotone ts);
  Alcotest.(check bool) "durations non-negative" true
    (List.for_all (fun s -> s.Span.dur >= 0.0) (Span.spans col))

let test_wrap_none_is_free () =
  let attr_calls = ref 0 in
  let r =
    Span.wrap None "never"
      ~attrs:(fun () -> incr attr_calls; [])
      (fun sub ->
        Alcotest.(check bool) "child scope is None" true (sub = None);
        Span.note sub "noop" (fun () -> incr attr_calls; []);
        Span.annotate sub (fun () -> incr attr_calls; []);
        42)
  in
  Alcotest.(check int) "wrap None returns the thunk's value" 42 r;
  Alcotest.(check int) "attr thunks never evaluated when disabled" 0 !attr_calls

let test_wrap_tree_and_exceptions () =
  let col = Span.create () in
  let sc = Some (Span.root col) in
  let r =
    Span.wrap sc "outer" (fun sub ->
        Span.note sub "ping" (fun () -> [ ("n", Span.Int 1) ]);
        Span.wrap sub "inner" (fun sub2 ->
            Span.annotate sub2 (fun () -> [ ("deep", Span.Bool true) ]);
            17))
  in
  Alcotest.(check int) "value through two wraps" 17 r;
  (try
     Span.wrap sc "boom" (fun _ -> failwith "kaboom")
   with Failure _ -> ());
  let all = Span.spans col in
  let by_name n = List.find (fun s -> s.Span.name = n) all in
  let outer = by_name "outer" and inner = by_name "inner" in
  let ping = by_name "ping" and boom = by_name "boom" in
  Alcotest.(check int) "outer is a root" 0 outer.Span.parent;
  Alcotest.(check int) "inner under outer" outer.Span.id inner.Span.parent;
  Alcotest.(check int) "note lands under its scope" outer.Span.id
    ping.Span.parent;
  Alcotest.(check bool) "instant kind" true (ping.Span.kind = Span.Instant);
  Alcotest.(check bool) "annotate reached the inner span" true
    (List.mem_assoc "deep" inner.Span.attrs);
  Alcotest.(check bool) "raising wrap still closes its span" true
    (boom.Span.dur >= 0.0)

let test_render () =
  let col = Span.create () in
  let sc = Some (Span.root col) in
  ignore
    (Span.wrap sc "optimize" (fun sub ->
         Span.wrap sub "rule"
           ~attrs:(fun () -> [ ("tables", Span.Str "{lineitem}") ])
           (fun _ -> ())));
  let out = Span.render col in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render mentions " ^ needle) true
        (Helpers.contains ~needle out))
    [ "optimize"; "rule"; "tables={lineitem}"; "ms" ]

(* Flat trace_event encoding: parse round-trip, the metadata event, and
   every span recoverable with its tree edges in [args]. *)
let test_trace_event_json () =
  let col = Span.create () in
  let sc = Some (Span.root col) in
  ignore
    (Span.wrap sc "outer" (fun sub ->
         Span.note sub "hit" (fun () -> [ ("layer", Span.Str "plan") ]);
         Span.wrap sub "inner" (fun _ -> ())));
  let open_id = Span.start col "still-open" in
  ignore open_id;
  let doc = Span.to_trace_event_json ~process_name:"unit" col in
  let reparsed = J.of_string (J.to_string doc) in
  Alcotest.(check bool) "export round-trips through the parser" true
    (J.equal doc reparsed);
  Alcotest.(check bool) "displayTimeUnit is ms" true
    (J.member "displayTimeUnit" doc = Some (J.String "ms"));
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List es) -> es
    | _ -> Alcotest.fail "traceEvents must be a list"
  in
  let ph e =
    match J.member "ph" e with Some (J.String s) -> s | _ -> "?"
  in
  let name e =
    match J.member "name" e with Some (J.String s) -> s | _ -> "?"
  in
  (* one metadata event naming the process *)
  let metas = List.filter (fun e -> ph e = "M") events in
  Alcotest.(check int) "one metadata event" 1 (List.length metas);
  Alcotest.(check bool) "process name travels" true
    (J.path [ "args"; "name" ] (List.hd metas) = Some (J.String "unit"));
  (* every event carries the required trace_event fields *)
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Printf.sprintf "%s event has %s" (ph e) k)
            true
            (J.member k e <> None))
        [ "name"; "ph"; "pid"; "tid" ])
    events;
  let completes = List.filter (fun e -> ph e = "X") events in
  let instants = List.filter (fun e -> ph e = "i") events in
  Alcotest.(check int) "three complete spans" 3 (List.length completes);
  Alcotest.(check int) "one instant" 1 (List.length instants);
  List.iter
    (fun e ->
      Alcotest.(check bool) "X events carry ts and dur" true
        (J.member "ts" e <> None && J.member "dur" e <> None))
    completes;
  Alcotest.(check bool) "instants are thread-scoped" true
    (J.member "s" (List.hd instants) = Some (J.String "t"));
  (* tree edges survive: inner's parent_id is outer's span_id *)
  let by_name n = List.find (fun e -> name e = n) completes in
  let span_id e = J.path [ "args"; "span_id" ] e in
  let parent_id e = J.path [ "args"; "parent_id" ] e in
  Alcotest.(check bool) "inner points at outer" true
    (parent_id (by_name "inner") = span_id (by_name "outer"));
  Alcotest.(check bool) "open span flagged unfinished" true
    (J.path [ "args"; "unfinished" ] (by_name "still-open")
    = Some (J.Bool true))

(* End to end: a traced optimize over one matching and one non-matching
   view must produce the pipeline's spans — optimize / analyze / rule /
   filter / per-view match spans — with the match verdicts attached. *)
let test_traced_optimize () =
  let registry = Mv_core.Registry.create schema in
  let add name sql =
    let _, vdef = Mv_sql.Parser.parse_view schema sql in
    ignore (Mv_core.Registry.add_view registry ~name vdef)
  in
  add "span_hit"
    {| create view span_hit with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 5 |};
  add "span_miss"
    {| create view span_miss with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 50 |};
  let q =
    Mv_sql.Parser.parse_query schema
      "select l_orderkey from lineitem where l_quantity >= 10"
  in
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  let col = Span.create () in
  let r =
    Mv_opt.Optimizer.optimize ~spans:(Span.root col) registry stats q
  in
  Alcotest.(check bool) "the matching view is used" true
    r.Mv_opt.Optimizer.used_views;
  let all = Span.spans col in
  let find n = List.find_opt (fun s -> s.Span.name = n) all in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("span " ^ n ^ " recorded") true (find n <> None))
    [ "optimize"; "analyze"; "rule"; "filter"; "match:span_hit"; "cost" ];
  let attr s k = List.assoc_opt k s.Span.attrs in
  let hit = Option.get (find "match:span_hit") in
  Alcotest.(check bool) "hit verdict" true
    (attr hit "result" = Some (Span.Str "matched"));
  (* span_miss's range ([50,inf)) cannot cover the query's [10,inf): if it
     survives the filter tree it must carry a reject verdict *)
  (match find "match:span_miss" with
  | None -> () (* pruned before matching — fine, the filter span saw it *)
  | Some miss ->
      Alcotest.(check bool) "miss verdict" true
        (attr miss "result" = Some (Span.Str "rejected"));
      Alcotest.(check bool) "miss carries the reject label" true
        (attr miss "reject" <> None));
  (* parenthood: rule under optimize, filter under rule *)
  let optimize = Option.get (find "optimize") in
  let rule = Option.get (find "rule") in
  let filter = Option.get (find "filter") in
  Alcotest.(check int) "rule under optimize" optimize.Span.id rule.Span.parent;
  Alcotest.(check int) "filter under rule" rule.Span.id filter.Span.parent;
  Alcotest.(check bool) "every span closed" true
    (List.for_all (fun s -> s.Span.dur >= 0.0) all);
  (* untraced same query: identical result, no collector involved *)
  let r2 = Mv_opt.Optimizer.optimize registry stats q in
  Alcotest.(check (float 1e-9)) "tracing does not change the plan cost"
    r.Mv_opt.Optimizer.cost r2.Mv_opt.Optimizer.cost

let suite =
  [
    ( "span",
      [
        Alcotest.test_case "collector lifecycle" `Quick test_lifecycle;
        Alcotest.test_case "finish is idempotent, sink never throws" `Quick
          test_finish_idempotent;
        Alcotest.test_case "timestamps monotone" `Quick
          test_monotone_timestamps;
        Alcotest.test_case "disabled scope costs nothing" `Quick
          test_wrap_none_is_free;
        Alcotest.test_case "wrap builds the tree, survives raises" `Quick
          test_wrap_tree_and_exceptions;
        Alcotest.test_case "text rendering" `Quick test_render;
        Alcotest.test_case "trace_event JSON export" `Quick
          test_trace_event_json;
        Alcotest.test_case "traced optimize carries the pipeline" `Quick
          test_traced_optimize;
      ] );
  ]
