(** Differential and stress tests for the multicore harness: a parallel
    run (the query batch sharded over N OCaml domains against one shared
    registry) must be observationally equal to the sequential run — same
    candidate sets, same match/substitute counters, same per-level
    filter-tree flow — with only the timings allowed to differ. Plus
    concurrency properties for the pieces that make that possible: the
    freezable interner and the atomic observability counters.

    Suites are named with a [par_] prefix so the @runtest-quick alias can
    select them; MVIEW_PAR_QUICK=1 shrinks the differential grid to a
    2-domain smoke. *)

module H = Mv_experiments.Harness
module Pool = Mv_experiments.Pool
module Symbol = Mv_util.Symbol
module Obs = Mv_obs

let quick = Sys.getenv_opt "MVIEW_PAR_QUICK" <> None

(* A private workload (not shared with test_experiments) sized so the full
   grid — 8 cells, each run sequentially and at 2 and 4 domains — stays
   fast even under the linear no-filter configurations. *)
let wl = lazy (H.make_workload ~nviews:120 ~nqueries:(if quick then 10 else 16) ())

(* ---------------------------------------------------------------- *)
(* Differential: parallel harness == sequential harness             *)
(* ---------------------------------------------------------------- *)

let check_equal_measurements ~label (seq : H.measurement) (par : H.measurement)
    =
  let chk what a b =
    Alcotest.(check int) (Printf.sprintf "%s: %s" label what) a b
  in
  chk "queries" seq.H.queries par.H.queries;
  chk "invocations" seq.H.invocations par.H.invocations;
  chk "candidates" seq.H.candidates par.H.candidates;
  chk "matched" seq.H.matched par.H.matched;
  chk "substitutes" seq.H.substitutes par.H.substitutes;
  chk "plans_using_views" seq.H.plans_using_views par.H.plans_using_views;
  let flow m =
    List.map
      (fun (f : H.level_flow) ->
        Printf.sprintf "%s %d/%d" f.H.level f.H.entered f.H.passed)
      m.H.level_flow
  in
  Alcotest.(check (list string))
    (Printf.sprintf "%s: level flow" label)
    (flow seq) (flow par)

let grid () =
  if quick then [ (120, { H.alt = true; filter = true }) ]
  else
    List.concat_map
      (fun nviews -> List.map (fun c -> (nviews, c)) H.all_configs)
      [ 0; 120 ]

let domain_counts = if quick then [ 2 ] else [ 2; 4 ]

let test_differential () =
  let w = Lazy.force wl in
  List.iter
    (fun (nviews, config) ->
      let seq = H.run w ~nviews ~config in
      List.iter
        (fun domains ->
          let par = H.run ~domains w ~nviews ~config in
          Alcotest.(check int)
            (Printf.sprintf "domains field (%d)" domains)
            domains par.H.domains;
          check_equal_measurements
            ~label:
              (Printf.sprintf "%d views, %s, %d domains" nviews
                 (H.config_name config) domains)
            seq par)
        domain_counts)
    (grid ())

(* Per-query candidate *sets* (not just totals): probing one shared
   registry + filter tree from several domains must yield, per query, the
   exact view list the sequential probe yields, in the same order. *)
let test_candidate_sets () =
  let w = Lazy.force wl in
  let registry =
    Mv_core.Registry.create ~use_filter:true ~backjoins:false w.H.schema
  in
  List.iter (Mv_core.Registry.add_prebuilt registry) w.H.views;
  Mv_relalg.Intern.freeze ();
  let queries =
    List.map (Mv_relalg.Analysis.analyze w.H.schema) w.H.queries
  in
  let names q =
    List.map
      (fun v -> v.Mv_core.View.name)
      (Mv_core.Registry.candidates registry q)
  in
  let seq = List.map names queries in
  List.iter
    (fun domains ->
      let par = Pool.map_list ~domains names queries in
      Alcotest.(check (list (list string)))
        (Printf.sprintf "candidate sets at %d domains" domains)
        seq par)
    domain_counts

(* ---------------------------------------------------------------- *)
(* Pool: the chunked scheduler itself                               *)
(* ---------------------------------------------------------------- *)

let test_chunk_bounds () =
  List.iter
    (fun (domains, n) ->
      let bounds = Pool.chunk_bounds ~domains n in
      (* contiguous cover of [0, n), sizes differing by at most one *)
      let rec check expected_lo sizes = function
        | [] ->
            Alcotest.(check int)
              (Printf.sprintf "cover hi (%d/%d)" domains n)
              n expected_lo;
            let mn = List.fold_left min max_int sizes
            and mx = List.fold_left max 0 sizes in
            Alcotest.(check bool)
              (Printf.sprintf "balanced (%d/%d)" domains n)
              true
              (mx - mn <= 1)
        | (lo, hi) :: rest ->
            Alcotest.(check int) "contiguous" expected_lo lo;
            Alcotest.(check bool) "nonempty" true (hi > lo);
            check hi ((hi - lo) :: sizes) rest
      in
      check 0 [] bounds)
    [ (1, 7); (2, 7); (4, 7); (4, 4); (4, 3); (3, 100); (8, 2) ]

let test_map_chunked_order () =
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "index order at %d domains" domains)
        (List.init 23 (fun i -> i * i))
        (Pool.map_chunked ~domains 23 (fun i -> i * i)))
    [ 1; 2; 4 ]

exception Boom of int

let test_map_chunked_exception () =
  (* a failing chunk re-raises in the caller, after every domain joined *)
  match Pool.map_chunked ~domains:4 16 (fun i -> if i = 9 then raise (Boom i) else i)
  with
  | _ -> Alcotest.fail "expected the chunk exception to propagate"
  | exception Boom 9 -> ()

(* ---------------------------------------------------------------- *)
(* Symbol: concurrent interning                                     *)
(* ---------------------------------------------------------------- *)

let rotate i xs =
  let n = List.length xs in
  if n = 0 then []
  else
    let k = i mod n in
    let arr = Array.of_list xs in
    List.init n (fun j -> arr.((j + k) mod n))

(* Four domains intern overlapping rotations of one string pool
   concurrently; the table must come out consistent: same string, same id,
   everywhere; no lost entries; ids dense 0..distinct-1; and the domain
   still accepts new strings after [freeze]. *)
let intern_prop =
  QCheck.Test.make
    ~name:"par: concurrent Symbol.intern from 4 domains is consistent"
    ~count:(Helpers.qcheck_count 50)
    QCheck.(small_list small_nat)
    (fun ints ->
      let pool = List.map (fun n -> "s" ^ string_of_int (n mod 50)) ints in
      let d = Symbol.create "par_intern_test" in
      let shards = List.init 4 (fun i -> rotate i pool) in
      let results =
        Pool.run_each
          (List.map
             (fun shard () ->
               List.map (fun s -> (s, Symbol.intern d s)) shard)
             shards)
      in
      let mapping = Hashtbl.create 16 in
      let consistent = ref true in
      List.iter
        (List.iter (fun (s, id) ->
             match Hashtbl.find_opt mapping s with
             | None -> Hashtbl.add mapping s id
             | Some id' -> if id <> id' then consistent := false))
        results;
      let distinct = Hashtbl.length mapping in
      let ids = Hashtbl.fold (fun _ id acc -> id :: acc) mapping [] in
      let round_trips =
        Hashtbl.fold
          (fun s id acc ->
            acc && Symbol.name d id = s && Symbol.find d s = Some id)
          mapping true
      in
      Symbol.freeze d;
      let fresh = Symbol.intern d "unseen-after-freeze" in
      !consistent
      && Symbol.size d = distinct + 1 (* the post-freeze intern *)
      && Symbol.frozen_size d = distinct
      && List.sort compare ids = List.init distinct Fun.id
      && round_trips && fresh = distinct
      && Symbol.name d fresh = "unseen-after-freeze")

(* ---------------------------------------------------------------- *)
(* Obs: shared counters / timers under concurrent update            *)
(* ---------------------------------------------------------------- *)

let counter_total_prop =
  QCheck.Test.make
    ~name:"par: 4 domains bumping one counter/timer lose no updates"
    ~count:(Helpers.qcheck_count 10)
    QCheck.(int_range 500 3000)
    (fun bumps ->
      let reg = Obs.Registry.create () in
      let c = Obs.Registry.counter reg "par.shared"
      and t = Obs.Registry.timer reg "par.timer" in
      ignore
        (Pool.run_each
           (List.init 4 (fun _ () ->
                for _ = 1 to bumps do
                  Obs.Instrument.incr c;
                  Obs.Instrument.record t ~wall:1e-6 ~cpu:1e-6
                done)));
      Obs.Instrument.value c = 4 * bumps
      && Obs.Instrument.intervals t = 4 * bumps
      && abs_float (Obs.Instrument.wall t -. (float_of_int (4 * bumps) *. 1e-6))
         < 1e-9 *. float_of_int (4 * bumps))

(* walk a JSON snapshot: every numeric leaf of a counter/timer-only
   registry must be non-negative, even when sampled mid-update *)
let rec check_nonneg path (j : Obs.Json.t) =
  match j with
  | Obs.Json.Int i ->
      if i < 0 then Alcotest.failf "negative counter in snapshot: %s = %d" path i
  | Obs.Json.Float f ->
      if f < 0.0 then
        Alcotest.failf "negative value in snapshot: %s = %f" path f
  | Obs.Json.Obj fields ->
      List.iter (fun (k, v) -> check_nonneg (path ^ "." ^ k) v) fields
  | Obs.Json.List xs ->
      List.iteri (fun i v -> check_nonneg (Printf.sprintf "%s.%d" path i) v) xs
  | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.String _ -> ()

let test_json_during_updates () =
  let bumps = if quick then 2_000 else 10_000 in
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "par.shared"
  and t = Obs.Registry.timer reg "par.timer" in
  let finished = Atomic.make 0 in
  let bumper () =
    for _ = 1 to bumps do
      Obs.Instrument.incr c;
      Obs.Instrument.record t ~wall:1e-6 ~cpu:1e-6
    done;
    Atomic.incr finished;
    0
  in
  let emitter () =
    (* snapshot continuously while the bumpers run: must never raise and
       never observe a negative value. At least one snapshot is taken even
       if the bumpers beat the emitter to the finish line (single-core
       hosts schedule the spawned domains first). *)
    let snaps = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      check_nonneg "" (Obs.Registry.to_json reg);
      ignore (Obs.Registry.render reg);
      incr snaps;
      if Atomic.get finished >= 4 then continue_ := false
    done;
    !snaps
  in
  match Pool.run_each (emitter :: List.init 4 (fun _ -> bumper)) with
  | snaps :: _ ->
      Alcotest.(check bool) "emitter ran" true (snaps >= 1);
      Alcotest.(check int) "exact counter total" (4 * bumps)
        (Obs.Instrument.value c);
      Alcotest.(check int) "exact interval total" (4 * bumps)
        (Obs.Instrument.intervals t);
      check_nonneg "" (Obs.Registry.to_json reg)
  | [] -> Alcotest.fail "run_each returned nothing"

(* ---------------------------------------------------------------- *)
(* Lattice: concurrent searches of one shared tree                  *)
(* ---------------------------------------------------------------- *)

let test_concurrent_lattice_search () =
  let module Bitset = Mv_util.Bitset in
  let module Lattice = Mv_core.Lattice in
  let t = Lattice.create () in
  (* all 6-bit sets with 1-3 elements: a dense DAG with many diamonds *)
  let sets =
    List.init 64 (fun n ->
        let rec bits i acc =
          if i >= 6 then acc
          else bits (i + 1) (if n land (1 lsl i) <> 0 then Bitset.add acc i else acc)
        in
        bits 0 Bitset.empty)
    |> List.filter (fun s ->
           let c = List.length (Bitset.elements s) in
           c >= 1 && c <= 3)
  in
  List.iter (fun s -> ignore (Lattice.insert t s)) sets;
  let probes = List.init 64 (fun n -> n) in
  let results_of probe =
    let key =
      let rec bits i acc =
        if i >= 6 then acc
        else bits (i + 1) (if probe land (1 lsl i) <> 0 then Bitset.add acc i else acc)
      in
      bits 0 Bitset.empty
    in
    List.sort compare
      (List.map
         (fun n -> Bitset.elements n.Lattice.key)
         (Lattice.subsets_of t key))
  in
  let seq = List.map results_of probes in
  List.iter
    (fun domains ->
      let par = Pool.map_list ~domains results_of probes in
      Alcotest.(check bool)
        (Printf.sprintf "subset searches agree at %d domains" domains)
        true (seq = par))
    [ 2; 4 ]

let suite =
  [
    ( "par_differential",
      [
        Alcotest.test_case "parallel harness == sequential harness" `Quick
          test_differential;
        Alcotest.test_case "per-query candidate sets identical" `Quick
          test_candidate_sets;
        Alcotest.test_case "concurrent lattice searches agree" `Quick
          test_concurrent_lattice_search;
      ] );
    ( "par_pool",
      [
        Alcotest.test_case "chunk bounds partition the range" `Quick
          test_chunk_bounds;
        Alcotest.test_case "map_chunked preserves index order" `Quick
          test_map_chunked_order;
        Alcotest.test_case "chunk exceptions propagate after join" `Quick
          test_map_chunked_exception;
      ] );
    ( "par_stress",
      [
        Helpers.qtest intern_prop;
        Helpers.qtest counter_total_prop;
        Alcotest.test_case "JSON snapshots during concurrent updates" `Quick
          test_json_during_updates;
      ] );
  ]
