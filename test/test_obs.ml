(** The observability layer itself: instrument arithmetic, scoped-registry
    isolation, JSON snapshot round-trips, the trace ring, and the
    [Registry.stats] façade agreeing with the underlying instruments. *)

module Obs = Mv_obs.Registry
module I = Mv_obs.Instrument
module J = Mv_obs.Json

let test_counter () =
  let c = I.counter () in
  Alcotest.(check int) "fresh" 0 (I.value c);
  I.incr c;
  I.incr c;
  I.add c 40;
  Alcotest.(check int) "incr + add" 42 (I.value c);
  I.reset_counter c;
  Alcotest.(check int) "reset" 0 (I.value c)

let test_timer () =
  let t = I.timer () in
  I.record t ~wall:1.5 ~cpu:0.5;
  I.record t ~wall:0.5 ~cpu:0.25;
  Alcotest.(check (float 1e-9)) "wall accumulates" 2.0 (I.wall t);
  Alcotest.(check (float 1e-9)) "cpu accumulates" 0.75 (I.cpu t);
  Alcotest.(check int) "intervals" 2 (I.intervals t);
  let x = I.time t (fun () -> 7) in
  Alcotest.(check int) "thunk value" 7 x;
  Alcotest.(check int) "timed interval recorded" 3 (I.intervals t);
  Alcotest.(check bool) "wall grew" true (I.wall t >= 2.0);
  (* a raising thunk still records its interval *)
  (try I.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raised interval recorded" 4 (I.intervals t);
  I.reset_timer t;
  Alcotest.(check (float 0.0)) "reset wall" 0.0 (I.wall t);
  Alcotest.(check int) "reset intervals" 0 (I.intervals t)

let test_histogram () =
  let h = I.histogram () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (I.mean h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (I.quantile h 0.5);
  List.iter (fun v -> I.observe h v) [ 1.0; 2.0; 3.0; 4.0; 10.0 ];
  Alcotest.(check int) "count" 5 (I.count h);
  Alcotest.(check (float 1e-9)) "sum" 20.0 (I.sum h);
  Alcotest.(check (float 1e-9)) "mean" 4.0 (I.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (I.min_value h);
  Alcotest.(check (float 1e-9)) "max" 10.0 (I.max_value h);
  (* power-of-two buckets: the p50 bound must cover the true median (2.0 <=
     bound <= max), and quantiles must be monotone in q *)
  let p50 = I.quantile h 0.5 and p95 = I.quantile h 0.95 in
  Alcotest.(check bool) "p50 covers median" true (p50 >= 2.0 && p50 <= 10.0);
  Alcotest.(check bool) "quantiles monotone" true (p95 >= p50);
  I.reset_histogram h;
  Alcotest.(check int) "reset count" 0 (I.count h)

let test_scoped_isolation () =
  let a = Obs.create () and b = Obs.create () in
  I.add (Obs.counter a "x") 5;
  I.add (Obs.counter b "x") 11;
  Alcotest.(check int) "a.x" 5 (Obs.counter_value a "x");
  Alcotest.(check int) "b.x" 11 (Obs.counter_value b "x");
  Alcotest.(check bool) "same name, distinct instruments" true
    (Obs.counter a "x" != Obs.counter b "x");
  Obs.reset a;
  Alcotest.(check int) "reset a only" 0 (Obs.counter_value a "x");
  Alcotest.(check int) "b untouched" 11 (Obs.counter_value b "x");
  (* get-or-create returns the same instrument for the same name *)
  Alcotest.(check bool) "idempotent lookup" true
    (Obs.counter a "x" == Obs.counter a "x")

let test_kind_mismatch () =
  let r = Obs.create () in
  ignore (Obs.counter r "m");
  Alcotest.check_raises "timer over counter"
    (Obs.Kind_mismatch "m already registered as a counter") (fun () ->
      ignore (Obs.timer r "m"))

let test_json_roundtrip () =
  let r = Obs.create ~trace_capacity:8 () in
  I.add (Obs.counter r "rule.invocations") 17;
  I.record (Obs.timer r "rule.time") ~wall:0.125 ~cpu:0.0625;
  let h = Obs.histogram r "latency" in
  List.iter (fun v -> I.observe h v) [ 0.001; 0.004; 2.5 ];
  Mv_obs.Trace.record (Obs.trace r) "rule"
    [ ("tables", J.String "{lineitem}"); ("candidates", J.Int 3) ];
  let snap = Obs.to_json r in
  let reparsed = J.of_string (J.to_string snap) in
  Alcotest.(check bool) "pretty round-trip" true (J.equal snap reparsed);
  let reparsed_min = J.of_string (J.to_string ~minify:true snap) in
  Alcotest.(check bool) "minified round-trip" true (J.equal snap reparsed_min);
  (* spot-check shape *)
  Alcotest.(check bool) "counter present" true
    (J.path [ "counters"; "rule.invocations" ] snap = Some (J.Int 17));
  Alcotest.(check bool) "timer wall" true
    (J.path [ "timers"; "rule.time"; "wall_s" ] snap = Some (J.Float 0.125));
  match J.member "trace" snap with
  | Some (J.List [ ev ]) ->
      Alcotest.(check bool) "trace event name" true
        (J.member "event" ev = Some (J.String "rule"))
  | _ -> Alcotest.fail "expected one trace event"

let test_json_parser () =
  let t = J.of_string {| {"a": [1, -2.5, true, null, "x\n\"yA"], "b": {}} |} in
  Alcotest.(check bool) "parsed" true
    (t
    = J.Obj
        [
          ( "a",
            J.List
              [ J.Int 1; J.Float (-2.5); J.Bool true; J.Null;
                J.String "x\n\"yA" ] );
          ("b", J.Obj []);
        ]);
  Alcotest.check_raises "trailing garbage"
    (J.Parse_error "trailing garbage at offset 5") (fun () ->
      ignore (J.of_string "null x"));
  (match J.of_string "1e3" with
  | J.Float f -> Alcotest.(check (float 1e-9)) "exponent" 1000.0 f
  | _ -> Alcotest.fail "1e3 should parse as a float");
  (* floats that look integral still round-trip as floats *)
  match J.of_string (J.to_string (J.Float 2.0)) with
  | J.Float f -> Alcotest.(check (float 0.0)) "2.0 stays float" 2.0 f
  | _ -> Alcotest.fail "Float 2.0 must not reparse as Int"

let test_trace_ring () =
  let tr = Mv_obs.Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Mv_obs.Trace.record tr "e" [ ("i", J.Int i) ]
  done;
  Alcotest.(check int) "retained" 4 (Mv_obs.Trace.length tr);
  Alcotest.(check int) "total" 10 (Mv_obs.Trace.total tr);
  let seqs = List.map (fun e -> e.Mv_obs.Trace.seq) (Mv_obs.Trace.events tr) in
  Alcotest.(check (list int)) "newest four, oldest first" [ 6; 7; 8; 9 ] seqs;
  let disabled = Mv_obs.Trace.create ~capacity:0 () in
  Mv_obs.Trace.record disabled "e" [];
  Alcotest.(check int) "capacity 0 records nothing" 0
    (Mv_obs.Trace.length disabled);
  (* the default is disabled too — tracing is opt-in, as Registry's
     [?trace_capacity] doc promises *)
  let default = Mv_obs.Trace.create () in
  Mv_obs.Trace.record default "e" [];
  Alcotest.(check int) "default capacity is 0" 0
    (Mv_obs.Trace.length default)

(* The compatibility façade: after a real matching run, [Registry.stats]
   must report exactly what the instruments hold. *)
let test_stats_facade () =
  let r = Mv_core.Registry.create Helpers.schema in
  let _, spjg =
    Mv_sql.Parser.parse_view Helpers.schema
      {| create view obs_v with schemabinding as
         select l_orderkey, l_quantity from dbo.lineitem
         where l_quantity >= 5 |}
  in
  ignore (Mv_core.Registry.add_view r ~name:"obs_v" spjg);
  let q =
    Mv_sql.Parser.parse_query Helpers.schema
      "select l_orderkey from lineitem where l_quantity >= 10"
  in
  ignore (Mv_core.Registry.find_substitutes_spjg r q);
  ignore (Mv_core.Registry.find_substitutes_spjg r q);
  ignore
    (Mv_core.Registry.find_substitutes_spjg r
       (Mv_sql.Parser.parse_query Helpers.schema
          "select s_name from supplier where s_acctbal >= 100"));
  let s = Mv_core.Registry.stats r in
  let obs = r.Mv_core.Registry.obs in
  Alcotest.(check int) "invocations" (Obs.counter_value obs "rule.invocations")
    s.Mv_core.Registry.invocations;
  Alcotest.(check int) "invocations value" 3 s.Mv_core.Registry.invocations;
  Alcotest.(check int) "candidates" (Obs.counter_value obs "rule.candidates")
    s.Mv_core.Registry.candidates;
  Alcotest.(check int) "matched" (Obs.counter_value obs "rule.matched")
    s.Mv_core.Registry.matched;
  Alcotest.(check int) "substitutes" (Obs.counter_value obs "rule.substitutes")
    s.Mv_core.Registry.substitutes;
  Alcotest.(check (float 1e-12)) "rule_time is the timer's cpu"
    (I.cpu (Obs.timer obs "rule.time"))
    s.Mv_core.Registry.rule_time;
  (* filter-tree level counters flowed into the same registry, and every
     level's out is bounded by its in *)
  Alcotest.(check bool) "searches recorded" true
    (Obs.counter_value obs "filter_tree.searches" > 0);
  List.iter
    (fun (f : Mv_experiments.Harness.level_flow) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: passed <= entered" f.Mv_experiments.Harness.level)
        true
        (f.Mv_experiments.Harness.passed <= f.Mv_experiments.Harness.entered))
    (Mv_experiments.Harness.level_flow_of r);
  Mv_core.Registry.reset_stats r;
  Alcotest.(check int) "reset façade" 0
    (Mv_core.Registry.stats r).Mv_core.Registry.invocations

let test_render () =
  let r = Obs.create () in
  I.add (Obs.counter r "a.count") 3;
  I.record (Obs.timer r "a.time") ~wall:1.0 ~cpu:0.5;
  ignore (Obs.histogram r "a.hist");
  let table = Obs.render r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render mentions " ^ needle) true
        (Helpers.contains ~needle table))
    [ "a.count"; "a.time"; "a.hist"; "wall"; "empty" ]

(* ---- Instrument.merge: merging == interleaved observation ---- *)

(* Deterministic value table: indices map to floats spanning ~24 binades
   so bucket boundaries actually get exercised. *)
let merge_value i =
  ldexp (1.0 +. (float_of_int (i mod 7) /. 7.0)) ((i mod 25) - 12)

(* Round-robin interleaving — a genuinely different observation order
   than per-source concatenation. *)
let rec interleave lists =
  match List.filter (fun l -> l <> []) lists with
  | [] -> []
  | ls -> List.map List.hd ls @ interleave (List.map List.tl ls)

let merge_hist_prop =
  QCheck.Test.make
    ~count:(Helpers.qcheck_count 200)
    ~name:
      "obs: merge_histograms == interleaved observation (quantiles within \
       one bucket)"
    QCheck.(list_of_size Gen.(1 -- 4) (list_of_size Gen.(0 -- 40) (int_bound 400)))
    (fun raw ->
      let parts = List.map (List.map merge_value) raw in
      let sources =
        List.map
          (fun p ->
            let h = I.histogram () in
            List.iter (I.observe h) p;
            h)
          parts
      in
      let merged = I.merge_histograms sources in
      let union = I.histogram () in
      List.iter (I.observe union) (interleave parts);
      let total = List.length (List.concat parts) in
      if I.count merged <> total || I.count merged <> I.count union then
        QCheck.Test.fail_reportf "count: merged %d union %d expected %d"
          (I.count merged) (I.count union) total;
      let su = I.sum union and sm = I.sum merged in
      if Float.abs (sm -. su) > 1e-9 *. (Float.abs su +. 1.0) then
        QCheck.Test.fail_reportf "sum: merged %.17g union %.17g" sm su;
      if total > 0 then begin
        if I.min_value merged <> I.min_value union then
          QCheck.Test.fail_reportf "min: merged %g union %g"
            (I.min_value merged) (I.min_value union);
        if I.max_value merged <> I.max_value union then
          QCheck.Test.fail_reportf "max: merged %g union %g"
            (I.max_value merged) (I.max_value union)
      end;
      List.iter
        (fun q ->
          let qm = I.quantile merged q and qu = I.quantile union q in
          if abs (I.bucket_of qm - I.bucket_of qu) > 1 then
            QCheck.Test.fail_reportf
              "p%g: merged %g (bucket %d) vs union %g (bucket %d)"
              (100. *. q) qm (I.bucket_of qm) qu (I.bucket_of qu))
        [ 0.01; 0.5; 0.9; 0.99 ];
      true)

let test_merge_timers () =
  let a = I.timer () and b = I.timer () in
  I.record a ~wall:1.5 ~cpu:0.5;
  I.record a ~wall:0.5 ~cpu:0.25;
  I.record b ~wall:2.0 ~cpu:1.0;
  let m = I.merge_timers [ a; b ] in
  Alcotest.(check (float 1e-12)) "wall" 4.0 (I.wall m);
  Alcotest.(check (float 1e-12)) "cpu" 1.75 (I.cpu m);
  Alcotest.(check int) "intervals" 3 (I.intervals m);
  (* sources unchanged; the merge target is fresh *)
  Alcotest.(check (float 1e-12)) "a untouched" 2.0 (I.wall a);
  let e = I.merge_timers [] in
  Alcotest.(check int) "empty merge" 0 (I.intervals e)

let test_merge_empty_histograms () =
  let m = I.merge_histograms [ I.histogram (); I.histogram () ] in
  Alcotest.(check int) "count" 0 (I.count m);
  Alcotest.(check (float 0.0)) "quantile" 0.0 (I.quantile m 0.5)

(* ---- JSON non-finite policy and empty/reset registry surfaces ---- *)

let test_json_nonfinite () =
  List.iter
    (fun f ->
      match J.of_string (J.to_string (J.Float f)) with
      | J.Null -> ()
      | other ->
          Alcotest.failf "%.17g should serialize as null, got %s" f
            (J.to_string ~minify:true other))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* nested occurrences follow the same policy; finite floats survive *)
  let doc =
    J.Obj
      [
        ("a", J.Float Float.nan);
        ("b", J.List [ J.Float Float.infinity; J.Int 1 ]);
        ("c", J.Float 2.5);
        ("d", J.Float Float.neg_infinity);
      ]
  in
  let expected =
    J.Obj
      [
        ("a", J.Null);
        ("b", J.List [ J.Null; J.Int 1 ]);
        ("c", J.Float 2.5);
        ("d", J.Null);
      ]
  in
  Alcotest.(check bool) "nested nan/inf -> null" true
    (J.equal expected (J.of_string (J.to_string doc)));
  Alcotest.(check bool) "minified too" true
    (J.equal expected (J.of_string (J.to_string ~minify:true doc)))

let test_empty_histogram_surfaces () =
  let r = Obs.create () in
  ignore (Obs.histogram r "h.empty");
  (* min/max of an empty histogram are +/-inf internally; the JSON dump
     must apply the null policy, and the whole snapshot must round-trip *)
  let j = Obs.to_json r in
  Alcotest.(check bool) "empty min is null" true
    (J.path [ "histograms"; "h.empty"; "min" ] j = Some J.Null);
  Alcotest.(check bool) "empty max is null" true
    (J.path [ "histograms"; "h.empty"; "max" ] j = Some J.Null);
  Alcotest.(check bool) "empty count" true
    (J.path [ "histograms"; "h.empty"; "count" ] j = Some (J.Int 0));
  Alcotest.(check bool) "round-trips" true
    (J.equal j (J.of_string (J.to_string j)));
  Alcotest.(check bool) "render mentions the empty histogram" true
    (Helpers.contains ~needle:"h.empty" (Obs.render r))

let test_reset_registry_surfaces () =
  let r = Obs.create () in
  I.add (Obs.counter r "c") 7;
  let h = Obs.histogram r "h" in
  List.iter (I.observe h) [ 0.5; 4.0 ];
  I.record (Obs.timer r "t") ~wall:1.0 ~cpu:0.5;
  Obs.reset r;
  let j = Obs.to_json r in
  Alcotest.(check bool) "counter back to 0" true
    (J.path [ "counters"; "c" ] j = Some (J.Int 0));
  Alcotest.(check bool) "histogram count back to 0" true
    (J.path [ "histograms"; "h"; "count" ] j = Some (J.Int 0));
  Alcotest.(check bool) "histogram min null again" true
    (J.path [ "histograms"; "h"; "min" ] j = Some J.Null);
  Alcotest.(check bool) "round-trips" true
    (J.equal j (J.of_string (J.to_string j)));
  (* instruments survive the reset by identity — render still lists them *)
  let table = Obs.render r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("reset render mentions " ^ needle) true
        (Helpers.contains ~needle table))
    [ "c"; "h"; "t" ]

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter arithmetic" `Quick test_counter;
        Alcotest.test_case "timer arithmetic" `Quick test_timer;
        Alcotest.test_case "histogram arithmetic" `Quick test_histogram;
        Alcotest.test_case "scoped registries are isolated" `Quick
          test_scoped_isolation;
        Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
        Alcotest.test_case "JSON snapshot round-trips" `Quick
          test_json_roundtrip;
        Alcotest.test_case "JSON parser" `Quick test_json_parser;
        Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
        Alcotest.test_case "stats façade = instruments" `Quick
          test_stats_facade;
        Alcotest.test_case "table rendering" `Quick test_render;
      ] );
    ( "obs_merge",
      [
        Helpers.qtest merge_hist_prop;
        Alcotest.test_case "merge_timers sums into a fresh timer" `Quick
          test_merge_timers;
        Alcotest.test_case "merging empty histograms" `Quick
          test_merge_empty_histograms;
      ] );
    ( "obs_json",
      [
        Alcotest.test_case "non-finite floats serialize as null" `Quick
          test_json_nonfinite;
        Alcotest.test_case "empty-histogram JSON and render surfaces" `Quick
          test_empty_histogram_surfaces;
        Alcotest.test_case "freshly-reset registry surfaces" `Quick
          test_reset_registry_surfaces;
      ] );
  ]
