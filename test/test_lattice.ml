(** Property tests for the lattice index of section 4.1, over interned
    bitset keys: searches must agree with brute force over random families
    of sets, through arbitrary interleavings of insertions and deletions. *)

module Bitset = Mv_util.Bitset
module Lattice = Mv_core.Lattice

(* sets over a universe of 6 elements, encoded in 6 bits — the encoding is
   exactly a one-word bitset, so [of_int] builds the key directly *)
let set_of_int n =
  let rec go i acc =
    if i >= 6 then acc
    else go (i + 1) (if n land (1 lsl i) <> 0 then Bitset.add acc i else acc)
  in
  go 0 Bitset.empty

let ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (pair (frequency [ (4, return `Insert); (1, return `Delete) ])
         (int_range 0 63)))

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun (op, n) ->
             (match op with `Insert -> "+" | `Delete -> "-")
             ^ string_of_int n)
           ops))
    ops_gen

(* apply ops to both the lattice and a reference list *)
let build ops =
  let t = Lattice.create () in
  let reference = ref [] in
  List.iter
    (fun (op, n) ->
      let key = set_of_int n in
      match op with
      | `Insert ->
          ignore (Lattice.insert t key);
          if not (List.exists (Bitset.equal key) !reference) then
            reference := key :: !reference
      | `Delete ->
          Lattice.delete t key;
          reference :=
            List.filter (fun k -> not (Bitset.equal k key)) !reference)
    ops;
  (t, !reference)

let keys_of nodes =
  List.sort compare (List.map (fun n -> Bitset.elements n.Lattice.key) nodes)

let subsets_prop =
  QCheck.Test.make ~name:"lattice: subsets_of agrees with brute force"
    ~count:300
    QCheck.(pair ops_arb (int_range 0 63))
    (fun (ops, probe) ->
      let t, reference = build ops in
      let key = set_of_int probe in
      let expected =
        List.filter (fun k -> Bitset.subset k key) reference
        |> List.map Bitset.elements |> List.sort compare
      in
      keys_of (Lattice.subsets_of t key) = expected)

let supersets_prop =
  QCheck.Test.make ~name:"lattice: supersets_of agrees with brute force"
    ~count:300
    QCheck.(pair ops_arb (int_range 0 63))
    (fun (ops, probe) ->
      let t, reference = build ops in
      let key = set_of_int probe in
      let expected =
        List.filter (fun k -> Bitset.subset key k) reference
        |> List.map Bitset.elements |> List.sort compare
      in
      keys_of (Lattice.supersets_of t key) = expected)

(* structural invariants: supers are minimal strict supersets, subs maximal
   strict subsets, tops have no supers, roots no subs *)
let invariants_prop =
  QCheck.Test.make ~name:"lattice: structural invariants" ~count:300 ops_arb
    (fun ops ->
      let t, reference = build ops in
      let nodes = Lattice.nodes t in
      List.length nodes = List.length reference
      && List.for_all
           (fun n ->
             let k = n.Lattice.key in
             (* supers: strict supersets with nothing in between *)
             List.for_all
               (fun s ->
                 Bitset.subset k s.Lattice.key
                 && (not (Bitset.equal k s.Lattice.key))
                 && not
                      (List.exists
                         (fun mid ->
                           (not (Bitset.equal mid k))
                           && (not (Bitset.equal mid s.Lattice.key))
                           && Bitset.subset k mid
                           && Bitset.subset mid s.Lattice.key)
                         reference))
               n.Lattice.supers
             && List.for_all
                  (fun b ->
                    Bitset.subset b.Lattice.key k
                    && not (Bitset.equal b.Lattice.key k))
                  n.Lattice.subs)
           nodes
      && List.for_all (fun n -> n.Lattice.supers = []) t.Lattice.tops
      && List.for_all (fun n -> n.Lattice.subs = []) t.Lattice.roots)

(* monotone predicate search: the generic traversal must equal brute force
   for an intersection-nonempty condition (the output-column condition of
   section 4.2.3) *)
let custom_search_prop =
  QCheck.Test.make ~name:"lattice: monotone predicate search" ~count:300
    QCheck.(pair ops_arb (pair (int_range 0 63) (int_range 0 63)))
    (fun (ops, (c1, c2)) ->
      let t, reference = build ops in
      let classes =
        List.filter
          (fun s -> not (Bitset.is_empty s))
          [ set_of_int c1; set_of_int c2 ]
      in
      let pred k =
        List.for_all (fun cls -> not (Bitset.inter_empty k cls)) classes
      in
      let got = keys_of (Lattice.search t ~dir:`Down ~pred) in
      let expected =
        List.filter pred reference
        |> List.map Bitset.elements |> List.sort compare
      in
      got = expected)

let test_insert_idempotent () =
  let t = Lattice.create () in
  let k = set_of_int 5 in
  let n1 = Lattice.insert t k in
  let n2 = Lattice.insert t k in
  Alcotest.(check bool) "same node" true (n1 == n2);
  Alcotest.(check int) "size 1" 1 (Lattice.size t)

let test_reentrant_search () =
  (* a predicate that re-enters the lattice with a full search of its own
     must not corrupt the outer search's dedup. Diamond {0},{1},{0,1}: with
     the old shared stamp/mark scheme the inner search re-stamped every
     node, so the outer traversal saw the join node {0,1} as unvisited from
     its second root and emitted it twice (or, reading the live stamp,
     skipped nodes entirely). Per-search scratch state keeps the two
     traversals independent. *)
  let t = Lattice.create () in
  List.iter
    (fun n -> ignore (Lattice.insert t (set_of_int n)))
    [ 1; 2; 3 ];
  let pred _k =
    ignore (Lattice.search t ~dir:`Down ~pred:(fun _ -> true));
    true
  in
  let got = keys_of (Lattice.search t ~dir:`Up ~pred) in
  Alcotest.(check (list (list int)))
    "each node exactly once"
    [ [ 0 ]; [ 0; 1 ]; [ 1 ] ]
    got

let test_paper_figure1 () =
  (* the eight key sets of Figure 1: A, B, D, AB, BE, ABC, ABF, BCDE —
     letters interned as bits A=0, B=1, ... *)
  let t = Lattice.create () in
  let mk s =
    Bitset.of_list
      (List.init (String.length s) (fun i -> Char.code s.[i] - Char.code 'A'))
  in
  List.iter
    (fun s -> ignore (Lattice.insert t (mk s)))
    [ "A"; "B"; "D"; "AB"; "BE"; "ABC"; "ABF"; "BCDE" ];
  (* search supersets of AB: AB, ABC, ABF (the paper's worked example) *)
  let got = keys_of (Lattice.supersets_of t (mk "AB")) in
  Alcotest.(check (list (list int)))
    "supersets of AB"
    [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1; 5 ] ]
    got;
  (* tops and roots per Figure 1 *)
  Alcotest.(check int) "3 tops" 3 (List.length t.Lattice.tops);
  Alcotest.(check int) "3 roots" 3 (List.length t.Lattice.roots)

let suite =
  [
    ( "lattice",
      [
        Alcotest.test_case "insert idempotent" `Quick test_insert_idempotent;
        Alcotest.test_case "paper figure 1" `Quick test_paper_figure1;
        Alcotest.test_case "reentrant search keeps dedup" `Quick
          test_reentrant_search;
        Helpers.qtest subsets_prop;
        Helpers.qtest supersets_prop;
        Helpers.qtest invariants_prop;
        Helpers.qtest custom_search_prop;
      ] );
  ]
