(** Dynamic-registry tests: the epoch protocol and the model-based sweep.

    The model: a registry mutated in place by interleaved add/drop ops must
    be indistinguishable — identical candidate sets and substitutes — from
    a registry rebuilt from scratch over the currently-live views after
    every step. qcheck generates the op sequences and shrinks failures to a
    minimal interleaving.

    The suite is named with a [prop_] prefix so the @runtest-quick alias
    picks it up (MVIEW_QCHECK_COUNT shrinks the case count). *)

module H = Mv_experiments.Harness
module R = Mv_core.Registry
module FT = Mv_core.Filter_tree
module A = Mv_relalg.Analysis

(* A small shared pool of views and queries; ops index into it. *)
let nviews = 30

let nqueries = 8

let wl = lazy (H.make_workload ~nviews ~nqueries ())

let view_name (v : Mv_core.View.t) = v.Mv_core.View.name

let nth_view i = List.nth (Lazy.force wl).H.views (i mod nviews)

let nth_query j = List.nth (Lazy.force wl).H.queries (j mod nqueries)

let analyses =
  lazy
    (let w = Lazy.force wl in
     List.map (A.analyze w.H.schema) w.H.queries)

(* Candidate sets as sorted name lists: the incrementally-mutated tree may
   enumerate in a different order than a scratch-built one, and order is
   not part of the spec — the SET is. *)
let candidate_names reg qa =
  List.sort compare (List.map view_name (R.candidates reg qa))

let substitute_sqls reg qa =
  List.sort compare
    (List.map Mv_core.Substitute.to_sql (R.find_substitutes reg qa))

let scratch_of views =
  let w = Lazy.force wl in
  let reg = R.create w.H.schema in
  List.iter (R.add_prebuilt reg) views;
  reg

(* ---------------------------------------------------------------- *)
(* The model-based property                                         *)
(* ---------------------------------------------------------------- *)

type op = Add of int | Drop of int | Query of int

let op_of_pair (k, i) =
  match k mod 3 with 0 -> Add i | 1 -> Drop i | _ -> Query i

let show_op = function
  | Add i -> Printf.sprintf "Add %d" (i mod nviews)
  | Drop i -> Printf.sprintf "Drop %d" (i mod nviews)
  | Query j -> Printf.sprintf "Query %d" (j mod nqueries)

(* Apply one op to both the dynamic registry and the model (the list of
   live views, in registration order); on [Query], the dynamic registry
   must agree with a scratch rebuild of the model. *)
let check_sequence pairs =
  let ops = List.map op_of_pair pairs in
  let w = Lazy.force wl in
  let reg = R.create w.H.schema in
  let live = ref [] in
  let fail op fmt =
    Printf.ksprintf
      (fun msg ->
        QCheck.Test.fail_reportf "after %s (live=%d): %s" (show_op op)
          (List.length !live) msg)
      fmt
  in
  let step op =
    (match op with
    | Add i ->
        let v = nth_view i in
        if not (List.exists (fun u -> view_name u = view_name v) !live) then (
          R.add_prebuilt reg v;
          live := !live @ [ v ])
    | Drop i ->
        let name = view_name (nth_view i) in
        R.remove_view reg name;
        live := List.filter (fun u -> view_name u <> name) !live
    | Query _ -> ());
    if R.view_count reg <> List.length !live then
      fail op "view_count %d <> model %d" (R.view_count reg)
        (List.length !live);
    match op with
    | Query j ->
        let qa = List.nth (Lazy.force analyses) (j mod nqueries) in
        let fresh = scratch_of !live in
        let dyn_c = candidate_names reg qa
        and ref_c = candidate_names fresh qa in
        if dyn_c <> ref_c then
          fail op "candidates {%s} <> scratch {%s}"
            (String.concat "," dyn_c) (String.concat "," ref_c);
        if substitute_sqls reg qa <> substitute_sqls fresh qa then
          fail op "substitutes differ from scratch rebuild"
    | Add _ | Drop _ -> ()
  in
  List.iter step ops;
  (* final sweep: every query agrees with a full rebuild *)
  let fresh = scratch_of !live in
  List.iteri
    (fun j qa ->
      if candidate_names reg qa <> candidate_names fresh qa then
        QCheck.Test.fail_reportf
          "final state: query %d candidates differ from scratch rebuild" j)
    (Lazy.force analyses);
  true

let model_prop =
  QCheck.Test.make
    ~name:"dynamic registry: add/drop interleavings match scratch rebuilds"
    ~count:(Helpers.qcheck_count 30)
    QCheck.(list_of_size (Gen.int_range 0 25) (pair small_nat small_nat))
    check_sequence

(* ---------------------------------------------------------------- *)
(* Epoch protocol units                                             *)
(* ---------------------------------------------------------------- *)

let test_epoch_protocol () =
  let w = Lazy.force wl in
  let reg = R.create w.H.schema in
  Alcotest.(check int) "empty registry is epoch 0" 0 (R.epoch reg);
  let v = List.hd w.H.views in
  R.add_prebuilt reg v;
  Alcotest.(check int) "add bumps the epoch" 1 (R.epoch reg);
  R.remove_view reg "no_such_view";
  Alcotest.(check int) "unknown drop is a no-op" 1 (R.epoch reg);
  R.remove_view reg (view_name v);
  Alcotest.(check int) "drop bumps the epoch" 2 (R.epoch reg);
  R.remove_view reg (view_name v);
  Alcotest.(check int) "re-drop is a no-op" 2 (R.epoch reg);
  R.add_prebuilt reg v;
  Alcotest.(check int) "re-add bumps again" 3 (R.epoch reg)

let test_duplicate_add_raises () =
  let w = Lazy.force wl in
  let reg = R.create w.H.schema in
  let v = List.hd w.H.views in
  R.add_prebuilt reg v;
  let epoch_before = R.epoch reg in
  Alcotest.check_raises "duplicate add"
    (R.Duplicate_view (view_name v))
    (fun () -> R.add_prebuilt reg v);
  Alcotest.(check int) "failed add leaves the epoch alone" epoch_before
    (R.epoch reg)

(* Removing every view must return the filter tree to its empty-tree node
   count: emptied lattice keys are deleted in place, so churn never
   accumulates dead index nodes. *)
let test_tree_prunes_to_baseline () =
  let w = Lazy.force wl in
  let reg = R.create w.H.schema in
  let views = H.take 20 w.H.views in
  let baseline = FT.stats reg.R.tree in
  List.iter (R.add_prebuilt reg) views;
  Alcotest.(check bool) "indexing grew the tree" true
    (FT.stats reg.R.tree > baseline);
  List.iter (fun v -> R.remove_view reg (view_name v)) views;
  Alcotest.(check int) "all views gone" 0 (R.view_count reg);
  Alcotest.(check int) "lattice nodes pruned back to baseline" baseline
    (FT.stats reg.R.tree);
  (* and the emptied tree yields no candidates *)
  List.iter
    (fun qa ->
      Alcotest.(check int) "no candidates from an emptied registry" 0
        (List.length (R.candidates reg qa)))
    (Lazy.force analyses)

let suite =
  [
    ( "prop_dynamic",
      [
        Helpers.qtest model_prop;
        Alcotest.test_case "epoch protocol" `Quick test_epoch_protocol;
        Alcotest.test_case "duplicate add raises, no epoch bump" `Quick
          test_duplicate_add_raises;
        Alcotest.test_case "drop prunes lattice nodes to baseline" `Quick
          test_tree_prunes_to_baseline;
      ] );
  ]
