(** Property harness for match soundness (end to end): whenever the
    matcher claims a view can answer a query ([Matcher.match_spjg] returns
    [Ok s]), executing the query directly and executing it through the
    substitute over generated TPC-H data must produce the same bag.

    Random (view, query) pairs almost never match — the paper needed
    1000-view workloads to see substitutes — so the pool combines two
    sources and gates both through [match_spjg]:
    - the organic cross product of generated views and generated queries;
    - per view, derived queries that stand a high chance of matching:
      the view's own definition, a range-narrowed variant (exercising
      predicate compensation), and a projected variant (exercising output
      routing).
    The qcheck property then samples (pair, database seed) combinations,
    so every case is an actual execution check. *)

module Gen = Mv_workload.Generator
module Spjg = Mv_relalg.Spjg

let schema = Helpers.schema

let stats = Mv_tpch.Datagen.synthetic_stats ()

let views =
  lazy
    (List.filter_map
       (fun (name, spjg) ->
         match Mv_core.View.create schema ~name spjg with
         | v -> Some v
         | exception Mv_core.View.Rejected _ -> None)
       (Gen.views ~seed:4242 schema stats 60))

let organic_queries = lazy (Gen.queries ~seed:2424 schema stats 40)

(* Query variants derived from a view definition. Each may fail [Spjg.make]
   validation or simply not match — both are filtered out downstream; the
   matcher stays the judge of what counts as a pair. *)
let derived_queries prng (v : Mv_core.View.t) =
  let s = Mv_core.View.spjg v in
  let remake ?(where = s.Spjg.where) ?(out = s.Spjg.out) () =
    try
      Some (Spjg.make ~tables:s.Spjg.tables ~where ~group_by:s.Spjg.group_by ~out)
    with Spjg.Invalid _ -> None
  in
  let narrowed =
    (* an extra range predicate; for aggregation views it must sit on a
       grouping column or no compensation can be built *)
    let rangeable = Gen.rangeable_cols schema s.Spjg.tables in
    let cols =
      match s.Spjg.group_by with
      | None -> rangeable
      | Some exprs ->
          List.filter
            (fun c -> List.exists (Mv_base.Expr.equal (Mv_base.Expr.Col c)) exprs)
            rangeable
    in
    match cols with
    | [] -> None
    | _ -> (
        let col = Mv_util.Prng.pick prng cols in
        match Gen.range_pred stats prng col 0.5 with
        | Some p -> remake ~where:(p :: s.Spjg.where) ()
        | None -> None)
  in
  let projected =
    (* keep scalar (grouping) outputs and the first aggregate — or, for SPJ
       views, every other column — exercising output-subset routing *)
    let out =
      if Spjg.is_aggregate s then
        let scalars, aggs =
          List.partition
            (fun (o : Spjg.out_item) ->
              match o.Spjg.def with Spjg.Scalar _ -> true | _ -> false)
            s.Spjg.out
        in
        match aggs with a :: _ :: _ -> scalars @ [ a ] | _ -> s.Spjg.out
      else List.filteri (fun i _ -> i mod 2 = 0) s.Spjg.out
    in
    if List.length out < List.length s.Spjg.out && out <> [] then
      remake ~out ()
    else None
  in
  Mv_core.View.spjg v :: List.filter_map Fun.id [ narrowed; projected ]

(* Every (view, query) pair the matcher accepts, with its substitute. *)
let matched_pairs =
  lazy
    (let prng = Mv_util.Prng.create 77 in
     let vs = Lazy.force views in
     let try_pair q v =
       match Mv_core.Matcher.match_spjg schema ~query:q v with
       | Ok s -> Some (q, s)
       | Error _ -> None
     in
     let organic =
       List.concat_map
         (fun q -> List.filter_map (try_pair q) vs)
         (Lazy.force organic_queries)
     in
     let derived =
       List.concat_map
         (fun v -> List.filter_map (fun q -> try_pair q v) (derived_queries prng v))
         vs
     in
     organic @ derived)

let test_pool_has_matches () =
  let pairs = Lazy.force matched_pairs in
  let n = List.length pairs in
  if n < 50 then
    Alcotest.failf
      "workload pools produced only %d matching (view, query) pairs — the \
       property below would sample too little variety"
      n;
  (* the pool must exercise both aggregation rollups and plain SPJ *)
  let agg, spj =
    List.partition (fun (q, _) -> Spjg.is_aggregate q) pairs
  in
  Alcotest.(check bool) "some aggregate pairs" true (agg <> []);
  Alcotest.(check bool) "some SPJ pairs" true (spj <> [])

(* ISSUE acceptance: >= 200 cases even in CI-quick mode. The env knob can
   raise the count but never lower it below 200. *)
let count = max 200 (Helpers.qcheck_count 200)

let equivalence_prop =
  QCheck.Test.make ~name:"matched substitute executes equivalently" ~count
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (pick, db_seed) ->
      let pairs = Lazy.force matched_pairs in
      let q, s = List.nth pairs (pick mod List.length pairs) in
      Helpers.check_equivalent ~seed:db_seed ~scale:1 ~query:q s;
      true)

let suite =
  [
    ( "prop_equivalence",
      [
        Alcotest.test_case "pools yield matching pairs" `Quick
          test_pool_has_matches;
        Helpers.qtest equivalence_prop;
      ] );
  ]
