(** Filter-tree soundness property (section 4): the filter tree is an
    index, not an oracle — with [use_filter:true] its candidate set must be
    a superset of the views that actually match when tested linearly.
    Checked for both index plans: {!Filter_tree.default_plan}
    ([backjoins:false]) and {!Filter_tree.backjoin_plan}
    ([backjoins:true], which drops the output levels because backjoins can
    recover missing columns). *)

module Gen = Mv_workload.Generator
module Sset = Mv_util.Sset

let schema = Helpers.schema

let stats = Mv_tpch.Datagen.synthetic_stats ()

let candidate_names registry qa =
  List.fold_left
    (fun acc (v : Mv_core.View.t) -> Sset.add v.Mv_core.View.name acc)
    Sset.empty
    (Mv_core.Registry.candidates registry qa)

(* One case = one fresh mini-workload: the seed drives both the view batch
   and the query batch, so shrinking finds a small failing workload. *)
let check_seed seed =
  let views =
    List.filter_map
      (fun (name, spjg) ->
        match Mv_core.View.create schema ~name spjg with
        | v -> Some v
        | exception Mv_core.View.Rejected _ -> None)
      (Gen.views ~seed:(1000 + seed) schema stats 25)
  in
  let queries = Gen.queries ~seed:(5000 + seed) schema stats 5 in
  List.iter
    (fun backjoins ->
      let filtered = Mv_core.Registry.create ~backjoins schema in
      List.iter (Mv_core.Registry.add_prebuilt filtered) views;
      assert filtered.Mv_core.Registry.use_filter;
      List.iter
        (fun q ->
          let qa = Mv_relalg.Analysis.analyze schema q in
          let cands = candidate_names filtered qa in
          List.iter
            (fun (v : Mv_core.View.t) ->
              match Mv_core.Matcher.match_view ~backjoins ~query:qa v with
              | Ok _ ->
                  if not (Sset.mem v.Mv_core.View.name cands) then
                    QCheck.Test.fail_reportf
                      "%s pruned view %s although it matches query:@.%s"
                      (if backjoins then "backjoin_plan" else "default_plan")
                      v.Mv_core.View.name
                      (Mv_relalg.Spjg.to_sql q)
              | Error _ -> ())
            views)
        queries)
    [ false; true ];
  true

let soundness_prop =
  QCheck.Test.make
    ~name:"filter-tree candidates are a superset of matches (both plans)"
    ~count:(Helpers.qcheck_count 50)
    QCheck.(int_bound 9999)
    check_seed

(* ---- interning equivalence ----

   The tree navigates by interned bitset keys; this reference evaluates the
   same level conditions directly with string/column-set operations on the
   views' un-interned descriptor fields — the pre-interning semantics. A
   view reaches a bucket iff every level condition on its path holds (each
   level partitions by key and applies its predicate to the key alone), so
   the tree must return exactly this set, in both plans. *)

module A = Mv_relalg.Analysis
module FT = Mv_core.Filter_tree
open Mv_base

let reference_candidates ~backjoins (views : Mv_core.View.t list) (qa : A.t) =
  let q_tables = qa.A.table_set in
  let q_out_templates = A.output_expr_templates qa in
  let q_out_classes =
    List.map
      (fun (c, _) -> Mv_relalg.Equiv.class_of qa.A.equiv c)
      (A.col_outputs qa)
  in
  let q_res_templates = A.residual_templates qa in
  let q_range_cols =
    List.fold_left
      (fun acc cls -> Sset.union acc (Mv_core.View.cols_to_strings cls))
      Sset.empty
      (A.range_constrained_classes qa)
  in
  let q_group_templates = A.grouping_expr_templates qa in
  let q_group_classes =
    match qa.A.spjg.Mv_relalg.Spjg.group_by with
    | None -> []
    | Some gs ->
        List.filter_map
          (function
            | Expr.Col c -> Some (Mv_relalg.Equiv.class_of qa.A.equiv c)
            | _ -> None)
          gs
  in
  let q_is_agg = Mv_relalg.Spjg.is_aggregate qa.A.spjg in
  let covers classes view_cols =
    List.for_all
      (fun cls -> not (Col.Set.is_empty (Col.Set.inter cls view_cols)))
      classes
  in
  let level_ok (v : Mv_core.View.t) = function
    | FT.Hubs -> Sset.subset v.Mv_core.View.hub q_tables
    | FT.Source_tables -> Sset.subset q_tables v.Mv_core.View.source_tables
    | FT.Output_exprs ->
        Sset.subset q_out_templates v.Mv_core.View.output_expr_templates
    | FT.Output_cols -> covers q_out_classes v.Mv_core.View.extended_output_cols
    | FT.Residuals ->
        Sset.subset v.Mv_core.View.residual_templates q_res_templates
    | FT.Range_cols -> Sset.subset v.Mv_core.View.reduced_range_cols q_range_cols
    | FT.Grouping_exprs ->
        Sset.subset q_group_templates v.Mv_core.View.grouping_expr_templates
    | FT.Grouping_cols ->
        covers q_group_classes v.Mv_core.View.extended_grouping_cols
  in
  let common =
    if backjoins then
      [ FT.Hubs; FT.Source_tables; FT.Residuals; FT.Range_cols ]
    else
      [
        FT.Hubs;
        FT.Source_tables;
        FT.Output_exprs;
        FT.Output_cols;
        FT.Residuals;
        FT.Range_cols;
      ]
  in
  let strong_ok v =
    List.for_all
      (fun cls ->
        not
          (Sset.is_empty
             (Sset.inter (Mv_core.View.cols_to_strings cls) q_range_cols)))
      v.Mv_core.View.range_classes
  in
  List.filter
    (fun v ->
      List.for_all (level_ok v) common
      && (if Mv_core.View.is_aggregate v then
            q_is_agg
            && List.for_all (level_ok v) [ FT.Grouping_exprs; FT.Grouping_cols ]
          else true)
      && strong_ok v)
    views

let names vs =
  List.sort compare (List.map (fun v -> v.Mv_core.View.name) vs)

let check_equivalence_seed seed =
  let views =
    List.filter_map
      (fun (name, spjg) ->
        match Mv_core.View.create schema ~name spjg with
        | v -> Some v
        | exception Mv_core.View.Rejected _ -> None)
      (Gen.views ~seed:(3000 + seed) schema stats 25)
  in
  let queries = Gen.queries ~seed:(7000 + seed) schema stats 5 in
  List.iter
    (fun backjoins ->
      let plan = if backjoins then FT.backjoin_plan else FT.default_plan in
      let tree = FT.create ~plan () in
      List.iter (FT.insert tree) views;
      List.iter
        (fun q ->
          let qa = Mv_relalg.Analysis.analyze schema q in
          let got = names (FT.candidates tree qa) in
          let expected = names (reference_candidates ~backjoins views qa) in
          if got <> expected then
            QCheck.Test.fail_reportf
              "%s: interned candidates {%s} <> string-set reference {%s}@.%s"
              (if backjoins then "backjoin_plan" else "default_plan")
              (String.concat "," got)
              (String.concat "," expected)
              (Mv_relalg.Spjg.to_sql q))
        queries)
    [ false; true ];
  true

let equivalence_prop =
  QCheck.Test.make
    ~name:"interned candidates equal the string-set reference (both plans)"
    ~count:(Helpers.qcheck_count 50)
    QCheck.(int_bound 9999)
    check_equivalence_seed

let suite =
  [ ("prop_filter", [ Helpers.qtest soundness_prop;
                      Helpers.qtest equivalence_prop ]) ]
