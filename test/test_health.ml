(** Differential tests for the per-view health ledger (DESIGN.md §14):
    the ledger is pure derived state, so every count it carries must be
    reproducible from the primary evidence — the optimizer results it was
    recorded from.

    Three layers:
    - a single-domain exact differential: the same workload on two fresh
      registries yields byte-identical ledger dumps, per-view [chosen]
      equals a replay tally of [Plan.views_used] over the returned
      results, and the candidate/matched totals equal the [rule.*] obs
      counters recorded at the same call sites;
    - deterministic units for the engine-side attribution points:
      [Ivm.apply] maintenance events/wall time and [Registry.mark_stale]
      staleness flips (flips count transitions, not calls);
    - a multi-domain serving identity under add/drop churn: N domains
      submitting through {!Mv_experiments.Serve.front} while a mutator
      drops/re-adds a view must lose no updates — [queries_total] equals
      the number of submissions and per-view [chosen + cache_hits] equals
      the summed occurrences of the view across every returned plan
      (single-flight leaders record chosen, L1/waiter paths cache hits).

    Suites are named with a [health_] prefix so the @runtest-quick alias
    can select them; MVIEW_HEALTH_QUICK=1 shrinks the domain grid and the
    per-domain submission counts to CI size. *)

module H = Mv_experiments.Harness
module S = Mv_experiments.Serve
module R = Mv_core.Registry
module Health = Mv_core.Health
module Opt = Mv_opt.Optimizer
module Plan = Mv_opt.Plan
module Ivm = Mv_engine.Ivm
module DB = Mv_engine.Database
module J = Mv_obs.Json
module Obs = Mv_obs.Registry
module V = Mv_base.Value

let quick = Sys.getenv_opt "MVIEW_HEALTH_QUICK" <> None
let domain_counts = if quick then [ 2 ] else [ 2; 4 ]
let wl = lazy (H.make_workload ~nviews:80 ~nqueries:10 ())

(* One deterministic optimization pass over the workload on a fresh
   registry: the ledger under test and the results that are its primary
   evidence. *)
let fresh_run () =
  let w = Lazy.force wl in
  let registry = R.create w.H.schema in
  List.iter (R.add_prebuilt registry) w.H.views;
  let results =
    List.map (fun q -> Opt.optimize registry w.H.stats q) w.H.queries
  in
  (w, registry, results)

let bump t v n =
  Hashtbl.replace t v (n + Option.value ~default:0 (Hashtbl.find_opt t v))

(* Per-view occurrence counts of [Plan.views_used] across results — what
   the ledger's chosen column must replay to. *)
let tally results =
  let t = Hashtbl.create 32 in
  List.iter
    (fun (r : Opt.result) ->
      List.iter (fun v -> bump t v 1) (Plan.views_used r.Opt.plan))
    results;
  t

(* ---------------------------------------------------------------- *)
(* Single-domain exact differential                                 *)
(* ---------------------------------------------------------------- *)

let test_replay_identical () =
  let _, r1, _ = fresh_run () in
  let _, r2, _ = fresh_run () in
  Alcotest.(check string)
    "same workload on fresh registries: byte-identical ledger dumps"
    (J.to_string (Health.to_json r1.R.health))
    (J.to_string (Health.to_json r2.R.health))

let test_chosen_equals_replay () =
  let w, registry, results = fresh_run () in
  let health = registry.R.health in
  let t = tally results in
  (* every credited view is explained by the plans, and vice versa *)
  Hashtbl.iter
    (fun v n ->
      match Health.find health v with
      | None -> Alcotest.failf "view %s used by a plan but has no account" v
      | Some row ->
          Alcotest.(check int)
            (Printf.sprintf "%s: chosen = plan occurrences" v)
            n row.Health.r_chosen)
    t;
  List.iter
    (fun (row : Health.row) ->
      if not (Hashtbl.mem t row.Health.r_view) then
        Alcotest.(check int)
          (Printf.sprintf "%s: absent from every plan, never chosen"
             row.Health.r_view)
          0 row.Health.r_chosen)
    (Health.rows health);
  Alcotest.(check int) "one observed query per optimize call"
    (List.length w.H.queries)
    (Health.queries_total health)

let test_totals_equal_rule_counters () =
  let _, registry, _ = fresh_run () in
  let rows = Health.rows registry.R.health in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Alcotest.(check int) "ledger candidate total = rule.candidates counter"
    (Obs.counter_value registry.R.obs "rule.candidates")
    (total (fun r -> r.Health.r_candidate));
  Alcotest.(check int) "ledger matched total = rule.matched counter"
    (Obs.counter_value registry.R.obs "rule.matched")
    (total (fun r -> r.Health.r_matched))

let test_column_sanity () =
  let _, registry, _ = fresh_run () in
  List.iter
    (fun (row : Health.row) ->
      let v = row.Health.r_view in
      Alcotest.(check bool)
        (v ^ ": matched never exceeds candidate")
        true
        (row.Health.r_matched <= row.Health.r_candidate);
      Alcotest.(check bool)
        (v ^ ": chosen implies matched")
        true
        (row.Health.r_chosen = 0 || row.Health.r_matched > 0);
      Alcotest.(check bool) (v ^ ": benefit non-negative") true
        (row.Health.r_benefit >= 0.0);
      Alcotest.(check bool)
        (v ^ ": dead iff never matched")
        true
        (Health.dead row = (row.Health.r_matched = 0)))
    (Health.rows registry.R.health)

(* ---------------------------------------------------------------- *)
(* Engine-side attribution: maintenance events and staleness flips  *)
(* ---------------------------------------------------------------- *)

let tiny_schema =
  let open Mv_catalog in
  Schema.make
    ~tables:
      [
        Table_def.make ~name:"fact"
          ~columns:
            [
              Column.make "f_id" Mv_base.Dtype.Int;
              Column.make "f_val" Mv_base.Dtype.Int;
            ]
          ~primary_key:[ "f_id" ] ();
      ]
    ~foreign_keys:[]

let tiny_view () =
  let col = Mv_base.Col.make in
  let open Mv_relalg.Spjg in
  Mv_core.View.create tiny_schema ~name:"hv_fact"
    (make ~tables:[ "fact" ] ~where:[] ~group_by:None
       ~out:
         [
           scalar "f_id" (Mv_base.Expr.Col (col "fact" "f_id"));
           scalar "f_val" (Mv_base.Expr.Col (col "fact" "f_val"));
         ])

let test_maintenance_attribution () =
  let db = DB.create tiny_schema in
  DB.insert db "fact" [| V.Int 1; V.Int 10 |];
  let view = tiny_view () in
  ignore (Mv_engine.Exec.materialize db view);
  let registry = R.create tiny_schema in
  R.add_prebuilt registry view;
  let ivm = Ivm.create ~health:registry.R.health db in
  Ivm.attach ivm view;
  Ivm.apply ivm
    [ ("fact", { Ivm.ins = [ [| V.Int 2; V.Int 20 |] ]; del = [] }) ];
  (match Health.find registry.R.health "hv_fact" with
  | None -> Alcotest.fail "maintained view has no ledger account"
  | Some row ->
      Alcotest.(check int) "one maintenance event" 1 row.Health.r_maint_events;
      Alcotest.(check bool) "maintenance wall time accumulated" true
        (row.Health.r_maint_s >= 0.0));
  Ivm.apply ivm
    [ ("fact", { Ivm.ins = []; del = [ [| V.Int 1; V.Int 10 |] ] }) ];
  match Health.find registry.R.health "hv_fact" with
  | None -> Alcotest.fail "account vanished"
  | Some row ->
      Alcotest.(check int) "second batch, second event" 2
        row.Health.r_maint_events

let test_stale_flip_attribution () =
  let view = tiny_view () in
  let registry = R.create tiny_schema in
  R.add_prebuilt registry view;
  let flips row_check =
    match Health.find registry.R.health "hv_fact" with
    | None -> Alcotest.fail "registered view has no ledger account"
    | Some row -> row_check row
  in
  let flipped = R.mark_stale registry ~tables:[ "fact" ] in
  Alcotest.(check int) "first write flips the view" 1 flipped;
  flips (fun row ->
      Alcotest.(check int) "one staleness flip recorded" 1
        row.Health.r_stale_flips);
  let again = R.mark_stale registry ~tables:[ "fact" ] in
  Alcotest.(check int) "already-stale view does not re-flip" 0 again;
  flips (fun row ->
      Alcotest.(check int) "flip count unchanged: transitions, not calls" 1
        row.Health.r_stale_flips)

(* ---------------------------------------------------------------- *)
(* Multi-domain serving identity under churn                        *)
(* ---------------------------------------------------------------- *)

(* N domains submit through one front while a mutator drops/re-adds the
   tail view. Submissions route through every serving path — flight
   leaders (optimizer records chosen), waiters and L1 hits
   (record_served records cache hits) — so the per-view identity
   [chosen + cache_hits = plan occurrences] and the per-submission
   identity [queries_total = submissions] only hold if no update is
   lost and every path records exactly once. *)
let test_serve_no_lost_updates () =
  List.iter
    (fun domains ->
      let w = Lazy.force wl in
      let registry = R.create w.H.schema in
      List.iter (R.add_prebuilt registry) w.H.views;
      Mv_relalg.Intern.freeze ();
      let front = S.front registry w.H.stats in
      let queries = Array.of_list w.H.queries in
      let nq = Array.length queries in
      let per = if quick then 200 else 600 in
      let stop = Atomic.make false in
      let churned = List.nth w.H.views (List.length w.H.views - 1) in
      let mutator =
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              (if !i land 1 = 0 then
                 R.remove_view registry churned.Mv_core.View.name
               else R.add_prebuilt registry churned);
              incr i;
              for _ = 1 to 500 do
                Domain.cpu_relax ()
              done
            done;
            (* leave the churned view registered for any later reader *)
            if !i land 1 = 1 then R.add_prebuilt registry churned)
      in
      let worker d =
        Domain.spawn (fun () ->
            let t = Hashtbl.create 32 in
            for k = 0 to per - 1 do
              let q = queries.((d + k) mod nq) in
              let _, r = S.submit front q in
              List.iter (fun v -> bump t v 1) (Plan.views_used r.Opt.plan)
            done;
            t)
      in
      let tallies = List.map Domain.join (List.init domains worker) in
      Atomic.set stop true;
      Domain.join mutator;
      let health = registry.R.health in
      Alcotest.(check int)
        (Printf.sprintf "%d domains: every submission logged exactly once"
           domains)
        (domains * per)
        (Health.queries_total health);
      let merged = Hashtbl.create 64 in
      List.iter (fun t -> Hashtbl.iter (bump merged) t) tallies;
      Hashtbl.iter
        (fun v n ->
          match Health.find health v with
          | None ->
              Alcotest.failf "%d domains: view %s served but unaccounted"
                domains v
          | Some row ->
              Alcotest.(check int)
                (Printf.sprintf
                   "%d domains: %s chosen + cache hits = plan occurrences"
                   domains v)
                n
                (row.Health.r_chosen + row.Health.r_cache_hits))
        merged;
      List.iter
        (fun (row : Health.row) ->
          if not (Hashtbl.mem merged row.Health.r_view) then
            Alcotest.(check int)
              (Printf.sprintf "%d domains: %s never served, never credited"
                 domains row.Health.r_view)
              0
              (row.Health.r_chosen + row.Health.r_cache_hits))
        (Health.rows health))
    domain_counts

let suite =
  [
    ( "health_differential",
      [
        Alcotest.test_case "replay identical on fresh registries" `Quick
          test_replay_identical;
        Alcotest.test_case "chosen equals plan-replay tally" `Quick
          test_chosen_equals_replay;
        Alcotest.test_case "ledger totals equal rule counters" `Quick
          test_totals_equal_rule_counters;
        Alcotest.test_case "column invariants" `Quick test_column_sanity;
      ] );
    ( "health_engine",
      [
        Alcotest.test_case "maintenance events and wall time" `Quick
          test_maintenance_attribution;
        Alcotest.test_case "staleness flips count transitions" `Quick
          test_stale_flip_attribution;
      ] );
    ( "health_serve",
      [
        Alcotest.test_case "no lost updates under churn" `Slow
          test_serve_no_lost_updates;
      ] );
  ]
