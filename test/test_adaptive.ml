(** Adaptive execution differentials: every join strategy — legacy hash,
    adaptive (NLJ / hash / indexed NLJ), and plan-level strategy nodes —
    must produce the identical bag; rewritten queries stay equivalent to
    the originals under the adaptive executor; and branch-and-bound
    cost-bound pruning never changes the chosen plan, only the work done. *)

module Spjg = Mv_relalg.Spjg

let schema = Mv_tpch.Schema.schema

(* One shared database with statistics built from its actual contents
   (histograms included), plus the declared indexes the adaptive executor
   can pick for indexed nested loops. *)
let db =
  lazy
    (let db = Mv_tpch.Datagen.generate ~seed:57 ~scale:2 () in
     List.iter
       (fun (table, cols) -> Mv_engine.Database.declare_index db ~table ~cols)
       [
         ("lineitem", [ "l_orderkey" ]);
         ("lineitem", [ "l_partkey" ]);
         ("orders", [ "o_orderkey" ]);
         ("part", [ "p_partkey" ]);
       ];
     db)

let stats = lazy (Mv_engine.Database.stats (Lazy.force db))

let gen_query seed =
  let rng = Mv_util.Prng.create seed in
  Mv_workload.Generator.generate_query schema (Lazy.force stats) rng

(* Adaptive direct execution computes the same bag as the legacy
   hash-pipeline for random section-5 queries. *)
let adaptive_exec_prop =
  QCheck.Test.make ~name:"adaptive: direct execution is bag-identical"
    ~count:(Helpers.qcheck_count 150) QCheck.small_int (fun seed ->
      let q = gen_query ((seed * 7919) + 1) in
      let db = Lazy.force db in
      let legacy = Mv_engine.Exec.execute db q in
      let adaptive =
        Mv_engine.Exec.execute ~adaptive:true ~stats:(Lazy.force stats) db q
      in
      let ok = Mv_engine.Relation.same_bag legacy adaptive in
      if not ok then
        QCheck.Test.fail_reportf
          "adaptive execution diverged!\nquery:\n%s\nlegacy=%d rows \
           adaptive=%d rows"
          (Spjg.to_sql q)
          (Mv_engine.Relation.cardinality legacy)
          (Mv_engine.Relation.cardinality adaptive);
      ok)

(* Optimizer plans (strategy nodes honored vs forced to hash) both equal
   direct execution. *)
let plan_strategy_prop =
  QCheck.Test.make ~name:"adaptive: plan strategies are bag-identical"
    ~count:(Helpers.qcheck_count 100) QCheck.small_int (fun seed ->
      let q = gen_query ((seed * 104729) + 2) in
      let db = Lazy.force db in
      let stats = Lazy.force stats in
      let registry = Mv_core.Registry.create schema in
      let r = Mv_opt.Optimizer.optimize registry stats q in
      let direct = Mv_engine.Exec.execute db q in
      let hash =
        Mv_opt.Plan_exec.execute ~force_hash:true db q r.Mv_opt.Optimizer.plan
      in
      let adaptive =
        Mv_opt.Plan_exec.execute ~adaptive:true ~stats db q
          r.Mv_opt.Optimizer.plan
      in
      let ok =
        Mv_engine.Relation.same_bag direct hash
        && Mv_engine.Relation.same_bag direct adaptive
      in
      if not ok then
        QCheck.Test.fail_reportf
          "plan execution diverged!\nquery:\n%s\nplan:\n%s" (Spjg.to_sql q)
          (Mv_opt.Plan.to_string r.Mv_opt.Optimizer.plan);
      ok)

(* Matched rewrites stay equivalent to the original when the substitute
   is executed through the adaptive path. Samples the matcher-accepted
   (query, substitute) pool built by {!Test_prop_equivalence} — random
   pairs almost never match, the pool guarantees real rewrites. *)
let adaptive_rewrite_prop =
  QCheck.Test.make
    ~name:"adaptive: rewritten queries equal originals under new executor"
    ~count:(Helpers.qcheck_count 150)
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (pick, db_seed) ->
      let pairs = Lazy.force Test_prop_equivalence.matched_pairs in
      let query, s = List.nth pairs (pick mod List.length pairs) in
      let db = Mv_tpch.Datagen.generate ~seed:db_seed ~scale:1 () in
      let direct = Mv_engine.Exec.execute db query in
      ignore (Mv_engine.Exec.materialize db s.Mv_core.Substitute.view);
      let stats = Mv_engine.Database.stats db in
      let via =
        Mv_engine.Exec.execute_substitute ~adaptive:true ~stats db s
      in
      let ok = Mv_engine.Relation.same_bag direct via in
      if not ok then
        QCheck.Test.fail_reportf
          "adaptive rewrite diverged!\nquery:\n%s\nsubstitute:\n%s\ndirect=%d \
           via=%d"
          (Spjg.to_sql query)
          (Mv_core.Substitute.to_sql s)
          (Mv_engine.Relation.cardinality direct)
          (Mv_engine.Relation.cardinality via);
      ok)

(* The indexed nested loop actually fires on a small-probe / large-build
   join with a declared index, and computes the same bag. *)
let test_inlj_fires () =
  let db = Lazy.force db in
  let stats = Lazy.force stats in
  let q =
    Helpers.parse_q
      "select p_brand, l_quantity from lineitem, part where l_partkey = \
       p_partkey and p_size >= 40"
  in
  let gval = Mv_obs.Registry.counter_value Mv_obs.Registry.global in
  let before = gval "exec.join.strategy.inlj" in
  let legacy = Mv_engine.Exec.execute db q in
  let adaptive = Mv_engine.Exec.execute ~adaptive:true ~stats db q in
  Alcotest.(check bool)
    "bag-identical" true
    (Mv_engine.Relation.same_bag legacy adaptive);
  Alcotest.(check bool)
    "indexed nested loop fired" true
    (gval "exec.join.strategy.inlj" > before)

(* Cost-bound pruning fires on a real view population and the chosen
   plans are identical with pruning on and off. *)
let test_prune_plans_unchanged () =
  let w =
    Mv_experiments.Harness.make_workload ~nviews:200 ~nqueries:25 ()
  in
  let make () =
    let registry = Mv_core.Registry.create w.Mv_experiments.Harness.schema in
    List.iter
      (Mv_core.Registry.add_prebuilt registry)
      w.Mv_experiments.Harness.views;
    registry
  in
  let plans config registry =
    List.map
      (fun q ->
        let r =
          Mv_opt.Optimizer.optimize ~config registry
            w.Mv_experiments.Harness.stats q
        in
        ( Mv_opt.Plan.to_string r.Mv_opt.Optimizer.plan,
          r.Mv_opt.Optimizer.cost ))
      w.Mv_experiments.Harness.queries
  in
  let reg_on = make () and reg_off = make () in
  let with_prune = plans Mv_opt.Optimizer.default_config reg_on in
  let without_prune =
    plans
      { Mv_opt.Optimizer.default_config with prune_cost_bound = false }
      reg_off
  in
  Alcotest.(check bool)
    "identical plans and costs" true
    (with_prune = without_prune);
  let prunes =
    Mv_obs.Registry.counter_value reg_on.Mv_core.Registry.obs
      "opt.prune.cost_bound"
  in
  Alcotest.(check bool) "pruning fired" true (prunes > 0);
  Alcotest.(check int)
    "no pruning when disabled" 0
    (Mv_obs.Registry.counter_value reg_off.Mv_core.Registry.obs
       "opt.prune.cost_bound")

(* The pruned views are reported in the result's provenance. *)
let test_pruned_views_reported () =
  let w =
    Mv_experiments.Harness.make_workload ~nviews:200 ~nqueries:25 ()
  in
  let registry = Mv_core.Registry.create w.Mv_experiments.Harness.schema in
  List.iter
    (Mv_core.Registry.add_prebuilt registry)
    w.Mv_experiments.Harness.views;
  let total =
    List.fold_left
      (fun acc q ->
        let r =
          Mv_opt.Optimizer.optimize registry w.Mv_experiments.Harness.stats q
        in
        acc + List.length r.Mv_opt.Optimizer.pruned_views)
      0 w.Mv_experiments.Harness.queries
  in
  let counted =
    Mv_obs.Registry.counter_value registry.Mv_core.Registry.obs
      "opt.prune.cost_bound"
  in
  Alcotest.(check int) "provenance matches the counter" counted total;
  Alcotest.(check bool) "some prunes happened" true (total > 0)

let suite =
  [
    ( "prop_adaptive",
      [
        Helpers.qtest adaptive_exec_prop;
        Helpers.qtest plan_strategy_prop;
        Helpers.qtest adaptive_rewrite_prop;
        Alcotest.test_case "indexed nested loop fires" `Quick test_inlj_fires;
        Alcotest.test_case "cost-bound pruning keeps plans" `Quick
          test_prune_plans_unchanged;
        Alcotest.test_case "pruned views reported" `Quick
          test_pruned_views_reported;
      ] );
  ]
