let () =
  Alcotest.run "mview"
    (Test_base.suite @ Test_relalg.suite @ Test_matching.suite
   @ Test_extra_tables.suite @ Test_aggregation.suite @ Test_sql.suite
   @ Test_lattice.suite @ Test_engine.suite @ Test_equivalence.suite
   @ Test_filter_tree.suite @ Test_optimizer.suite @ Test_relaxed_nulls.suite
   @ Test_tpch.suite @ Test_workload.suite @ Test_util.suite
   @ Test_checks.suite @ Test_backjoin.suite @ Test_index.suite
   @ Test_union.suite @ Test_opt_internals.suite @ Test_eval_funcs.suite
   @ Test_compensation_routing.suite @ Test_filter_levels.suite
   @ Test_experiments.suite @ Test_disjunction.suite @ Test_invariants.suite
   @ Test_dimension_hierarchy.suite @ Test_obs.suite @ Test_span.suite
   @ Test_whynot.suite
   @ Test_prop_equivalence.suite @ Test_prop_filter.suite
   @ Test_parallel.suite @ Test_dynamic.suite @ Test_cache.suite
   @ Test_serve.suite @ Test_stats.suite @ Test_adaptive.suite
   @ Test_ivm.suite @ Test_advisor.suite @ Test_health.suite)
