(* Property tests for the view-selection advisor. The numeric selection
   core is exercised in isolation on randomized instances (feasibility,
   local-search dominance, a brute-force differential against an
   independent subset enumeration written here), then the candidate
   miner and the advise glue are checked end-to-end on generated
   workloads: every mined candidate must register through the dynamic
   registry and match at least one of its source queries. *)

module Sel = Mv_opt.Advisor.Selection
module Advisor = Mv_opt.Advisor
module Optimizer = Mv_opt.Optimizer
module Miner = Mv_workload.Miner
module Registry = Mv_core.Registry
module A = Mv_relalg.Analysis
module Spjg = Mv_relalg.Spjg
module Prng = Mv_util.Prng

let quick = Sys.getenv_opt "MVIEW_ADVISE_QUICK" <> None
let count = Helpers.qcheck_count (if quick then 15 else 60)

(* ------------------------------------------------------------------ *)
(* Randomized selection instances. Everything is derived from one seed
   through the repo's own PRNG so shrinking stays meaningful and every
   failure reproduces bit-for-bit. *)

type raw = {
  base : float array;
  cands : Sel.candidate list;
  budget : float;
}

let raw_instance ?(max_n = 10) seed =
  let prng = Prng.create seed in
  let nq = 1 + Prng.int prng 6 in
  let n = 1 + Prng.int prng max_n in
  let base =
    Array.init nq (fun _ -> 10. +. float_of_int (Prng.int prng 1000))
  in
  let cands =
    List.init n (fun i ->
        let saves =
          List.concat
            (List.init nq (fun q ->
                 if Prng.chance prng 0.5 then
                   (* deliberately sometimes at or above base: the
                      constructor must drop useless entries without
                      changing the objective *)
                   [ (q, Prng.float prng *. base.(q) *. 1.2) ]
                 else []))
        in
        {
          Sel.id = Printf.sprintf "c%d" i;
          size = 1. +. float_of_int (Prng.int prng 100);
          maint = float_of_int (Prng.int prng 40);
          saves;
        })
  in
  let budget = float_of_int (Prng.int prng 260) in
  { base; cands; budget }

let instance_of_raw r = Sel.instance ~base:r.base ~budget:r.budget r.cands

let tol_of r =
  let s = Array.fold_left ( +. ) 0. r.base in
  let m = List.fold_left (fun a c -> a +. c.Sel.maint) s r.cands in
  1e-6 *. (1. +. m)

(* Independent reference: objective and exhaustive optimum computed
   straight from the raw data, sharing no code with the implementation. *)

let ref_objective r sel =
  let qcost = Array.copy r.base in
  let maint = ref 0. in
  List.iter
    (fun j ->
      let c = List.nth r.cands j in
      maint := !maint +. c.Sel.maint;
      List.iter
        (fun (q, v) -> if v < qcost.(q) then qcost.(q) <- v)
        c.Sel.saves)
    sel;
  Array.fold_left ( +. ) !maint qcost

let ref_size r sel =
  List.fold_left (fun a j -> a +. (List.nth r.cands j).Sel.size) 0. sel

let ref_best r =
  let n = List.length r.cands in
  let best = ref (ref_objective r []) in
  for mask = 1 to (1 lsl n) - 1 do
    let sel =
      List.filter (fun j -> mask land (1 lsl j) <> 0) (List.init n Fun.id)
    in
    if ref_size r sel <= r.budget then begin
      let o = ref_objective r sel in
      if o < !best then best := o
    end
  done;
  !best

let seed_arb _name = QCheck.small_int

(* ------------------------------------------------------------------ *)
(* Selection-core properties. *)

let prop_within_budget =
  QCheck.Test.make ~count ~name:"select stays within budget"
    (seed_arb "seed")
    (fun seed ->
      let r = raw_instance seed in
      let inst = instance_of_raw r in
      let sel = Sel.select inst in
      Sel.within_budget inst sel
      && ref_size r sel <= r.budget +. tol_of r
      && Sel.within_budget inst (Sel.greedy inst))

let prop_local_search_dominates =
  QCheck.Test.make ~count
    ~name:"local search never worse than greedy alone" (seed_arb "seed")
    (fun seed ->
      let r = raw_instance seed in
      let inst = instance_of_raw r in
      let g = Sel.greedy inst in
      let ls = Sel.local_search inst g in
      Sel.objective inst ls <= Sel.objective inst g +. tol_of r)

let prop_beats_empty =
  QCheck.Test.make ~count ~name:"selected cost <= empty-set cost"
    (seed_arb "seed")
    (fun seed ->
      let r = raw_instance seed in
      let inst = instance_of_raw r in
      Sel.objective inst (Sel.select inst)
      <= Sel.objective inst [] +. tol_of r)

let prop_deterministic =
  QCheck.Test.make ~count ~name:"selection deterministic for a fixed seed"
    (seed_arb "seed")
    (fun seed ->
      let a = Sel.select (instance_of_raw (raw_instance seed)) in
      let b = Sel.select (instance_of_raw (raw_instance seed)) in
      a = b)

let prop_objective_matches_reference =
  QCheck.Test.make ~count ~name:"objective matches reference computation"
    (seed_arb "seed")
    (fun seed ->
      let r = raw_instance seed in
      let inst = instance_of_raw r in
      let prng = Prng.create (seed lxor 0x5ca1ab1e) in
      let n = List.length r.cands in
      let sel =
        List.filter (fun _ -> Prng.bool prng) (List.init n Fun.id)
      in
      Float.abs (Sel.objective inst sel -. ref_objective r sel)
      <= tol_of r)

let prop_brute_force_differential =
  QCheck.Test.make ~count
    ~name:"brute force optimal on small instances (differential)"
    (seed_arb "seed")
    (fun seed ->
      let r = raw_instance ~max_n:6 seed in
      let inst = instance_of_raw r in
      let bf = Sel.brute_force inst in
      let sel = Sel.select inst in
      (* small instances route select through brute force: both must hit
         the independently computed optimum *)
      Float.abs (Sel.objective inst bf -. ref_best r) <= tol_of r
      && Float.abs (Sel.objective inst sel -. ref_best r) <= tol_of r
      && Sel.within_budget inst bf)

let test_rejects_infeasible_start () =
  let r =
    {
      base = [| 100. |];
      cands =
        [
          { Sel.id = "a"; size = 10.; maint = 0.; saves = [ (0, 50.) ] };
          { Sel.id = "b"; size = 10.; maint = 0.; saves = [ (0, 40.) ] };
        ];
      budget = 10.;
    }
  in
  let inst = instance_of_raw r in
  (match Sel.local_search inst [ 0; 1 ] with
  | _ -> Alcotest.fail "local_search accepted an over-budget start"
  | exception Sel.Invalid _ -> ());
  match Sel.instance ~base:[| Float.nan |] ~budget:1. [] with
  | _ -> Alcotest.fail "instance accepted a NaN base cost"
  | exception Sel.Invalid _ -> ()

(* ------------------------------------------------------------------ *)
(* Miner: registration round-trip and no dead candidates. *)

let schema = Helpers.schema
let stats = Mv_tpch.Datagen.synthetic_stats ()

let workload n seed = Mv_workload.Generator.queries ~seed schema stats n

let test_miner_no_dead_candidates () =
  let queries = workload (if quick then 6 else 12) 11 in
  let qarr = Array.of_list queries in
  let cands = Miner.mine queries in
  Alcotest.(check bool) "mined something" true (cands <> []);
  List.iter
    (fun (c : Miner.candidate) ->
      (* round-trip: the dynamic registry must accept (and index) the
         candidate under its mined name *)
      let reg = Registry.create schema in
      (try ignore (Registry.add_view reg ~name:c.Miner.name c.Miner.spjg)
       with exn ->
         Alcotest.failf "candidate %s rejected by the registry: %s"
           c.Miner.name (Printexc.to_string exn));
      Alcotest.(check bool)
        (c.Miner.name ^ " has a source") true (c.Miner.sources <> []);
      let matches_source =
        List.exists
          (fun i ->
            List.exists
              (fun block ->
                Registry.find_substitutes reg (A.analyze schema block) <> [])
              (Optimizer.enumerate_blocks qarr.(i)))
          c.Miner.sources
      in
      Alcotest.(check bool)
        (c.Miner.name ^ " matches a source query")
        true matches_source)
    cands

let test_miner_deterministic () =
  let queries = workload 8 23 in
  let fp cands =
    List.map
      (fun (c : Miner.candidate) ->
        (c.Miner.name, Spjg.to_sql c.Miner.spjg, c.Miner.sources))
      cands
  in
  Alcotest.(check bool)
    "same candidates on re-mine" true
    (fp (Miner.mine queries) = fp (Miner.mine queries))

(* ------------------------------------------------------------------ *)
(* Advise glue end-to-end on a generated workload. *)

let test_advise_end_to_end () =
  let nq = if quick then 8 else 16 in
  let queries = workload nq 42 in
  let cands = Miner.definitions (Miner.mine queries) in
  let pool_rows =
    List.fold_left
      (fun a (name, spjg) ->
        a + Mv_opt.Cost.estimate_view_rows ~name stats spjg)
      0 cands
  in
  let budget = 0.05 *. float_of_int pool_rows in
  let config = { Advisor.default_config with budget } in
  let advice = Advisor.advise ~config schema stats ~candidates:cands
      ~queries in
  Alcotest.(check bool) "has picks" true (advice.Advisor.picks <> []);
  let used =
    List.fold_left
      (fun a (p : Advisor.pick) -> a +. float_of_int p.Advisor.rows)
      0. advice.Advisor.picks
  in
  Alcotest.(check bool) "within budget" true (used <= budget +. 1e-6);
  Alcotest.(check (float 1e-6)) "used_budget consistent" used
    advice.Advisor.used_budget;
  Alcotest.(check bool)
    "advised cost <= view-free cost" true
    (advice.Advisor.cost_after <= advice.Advisor.cost_before +. 1e-6);
  Alcotest.(check int) "considered+rejected covers the pool"
    (List.length cands)
    (advice.Advisor.considered + advice.Advisor.rejected);
  (* registration bumps the epoch once per pick *)
  let reg = Registry.create schema in
  let e0 = Registry.epoch reg in
  Advisor.register_picks reg advice;
  Alcotest.(check int) "epoch bump per pick"
    (e0 + List.length advice.Advisor.picks)
    (Registry.epoch reg);
  (* determinism of the whole pipeline *)
  let advice' =
    Advisor.advise ~config schema stats ~candidates:cands ~queries
  in
  Alcotest.(check (list string)) "same picks on re-advise"
    (List.map (fun (p : Advisor.pick) -> p.Advisor.name) advice.Advisor.picks)
    (List.map (fun (p : Advisor.pick) -> p.Advisor.name)
       advice'.Advisor.picks)

let suite =
  [
    ( "advise_selection",
      [
        Alcotest.test_case "infeasible inputs rejected" `Quick
          test_rejects_infeasible_start;
        Helpers.qtest prop_within_budget;
        Helpers.qtest prop_local_search_dominates;
        Helpers.qtest prop_beats_empty;
        Helpers.qtest prop_deterministic;
        Helpers.qtest prop_objective_matches_reference;
        Helpers.qtest prop_brute_force_differential;
      ] );
    ( "advise_miner",
      [
        Alcotest.test_case "no dead candidates" `Quick
          test_miner_no_dead_candidates;
        Alcotest.test_case "mining deterministic" `Quick
          test_miner_deterministic;
      ] );
    ( "advise_advisor",
      [
        Alcotest.test_case "end-to-end advise" `Quick
          test_advise_end_to_end;
      ] );
  ]
