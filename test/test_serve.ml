(** Concurrency suite for the serving front end (DESIGN.md §10): a
    linearizability-style model test over RCU registry snapshots under
    add/drop churn, a single-flight stress herd, a qcheck differential
    against sequential optimization, the lost-update property for the new
    [cache.l1.*] counters, and the capacity-0 trace ring under concurrent
    always-on phase histograms.

    Suites are named with a [serve_] prefix so the @runtest-quick alias
    can select them; MVIEW_SERVE_QUICK=1 shrinks the domain grid to 2 and
    the stress loops/durations to CI size. *)

module H = Mv_experiments.Harness
module S = Mv_experiments.Serve
module Pool = Mv_experiments.Pool
module R = Mv_core.Registry
module Opt = Mv_opt.Optimizer
module Plan = Mv_opt.Plan
module Obs = Mv_obs

let quick = Sys.getenv_opt "MVIEW_SERVE_QUICK" <> None
let domain_counts = if quick then [ 2 ] else [ 2; 4 ]

(* A private workload: big enough that optimizations are non-trivial and
   views overlap, small enough that the scratch-registry replay of the
   linearizability check stays fast. *)
let wl =
  lazy (H.make_workload ~nviews:100 ~nqueries:(if quick then 8 else 12) ())

(* A fresh registry + front over the first [n] workload views. *)
let mk_front ?(n = 80) () =
  let w = Lazy.force wl in
  let registry = R.create w.H.schema in
  List.iter (R.add_prebuilt registry) (H.take n w.H.views);
  Mv_relalg.Intern.freeze ();
  (w, registry, S.front registry w.H.stats)

(* ---------------------------------------------------------------- *)
(* Linearizability: every observation explainable in epoch order    *)
(* ---------------------------------------------------------------- *)

(* The model test rides the open-loop driver itself: N serving domains in
   a closed loop against one registry while the mutator drops/re-adds tail
   views; [Serve.run] samples per-domain (epoch, query, plan) observations
   and replays each against a scratch registry holding exactly the view
   population of the observed epoch. [sv_consistent] is the verdict. *)
let test_linearizable () =
  let w = Lazy.force wl in
  List.iter
    (fun domains ->
      let cfg =
        {
          S.default_cfg with
          S.nviews = 100;
          domains;
          rate = 0.0 (* closed loop: maximum contention *);
          duration = (if quick then 0.3 else 0.6);
          warmup = false;
          churn_period = 0.02;
          churn_pool = 6;
          sample = 96;
          sample_stride = 3;
        }
      in
      let m = S.run ~cfg w in
      let lbl what = Printf.sprintf "%d domains: %s" domains what in
      Alcotest.(check bool) (lbl "served queries") true (m.S.sv_queries > 0);
      Alcotest.(check bool) (lbl "mutator ran") true (m.S.sv_mutations > 0);
      Alcotest.(check bool) (lbl "observations sampled") true (m.S.sv_sampled > 0);
      (* the single mutator's ops are all effective, so each bumps the
         epoch exactly once: the run covers mutations+1 registry states *)
      Alcotest.(check int)
        (lbl "epoch delta = mutations")
        m.S.sv_mutations
        (m.S.sv_epoch_hi - m.S.sv_epoch_lo);
      Alcotest.(check bool)
        (lbl "every observation explainable by its epoch's registry state")
        true m.S.sv_consistent)
    domain_counts

(* ---------------------------------------------------------------- *)
(* Serving under write traffic: delta batches ride the mutator      *)
(* ---------------------------------------------------------------- *)

(* The churn mutator also pushes IVM delta batches (against a private
   database + view clones) and flips staleness bits on the live registry
   between ticks. Everything the read side guarantees must survive:
   the linearizability replay, the epoch accounting, and the per-submit
   cache/flight identities — while the maintained contents stay equal to
   a from-scratch recomputation. *)
let test_serve_under_writes () =
  let w = Lazy.force wl in
  List.iter
    (fun domains ->
      let cfg =
        {
          S.default_cfg with
          S.nviews = 100;
          domains;
          rate = 0.0;
          duration = (if quick then 0.3 else 0.6);
          warmup = false;
          churn_period = 0.02;
          churn_pool = 4;
          sample = 96;
          sample_stride = 3;
          maintain_batch = 8;
          maintain_views = 8;
        }
      in
      let m = S.run ~cfg w in
      let lbl what = Printf.sprintf "%d domains: %s" domains what in
      Alcotest.(check bool) (lbl "served queries") true (m.S.sv_queries > 0);
      Alcotest.(check bool) (lbl "delta batches applied") true
        (m.S.sv_maint_batches > 0);
      Alcotest.(check bool)
        (lbl "maintained views == from-scratch recomputation")
        true m.S.sv_maint_consistent;
      (* maintenance and staleness flips never move the registry epoch:
         the add/drop log still accounts for every epoch step *)
      Alcotest.(check int)
        (lbl "epoch delta = add/drop mutations")
        m.S.sv_mutations
        (m.S.sv_epoch_hi - m.S.sv_epoch_lo);
      Alcotest.(check bool)
        (lbl "linearizability replay still passes under writes")
        true m.S.sv_consistent;
      (* single-flight accounting identities over the whole run: every
         submit is exactly one of an L1 hit or an L1 miss, and every L1
         miss resolves exactly one way — plan-layer hit, flight leader,
         or flight waiter *)
      Alcotest.(check int)
        (lbl "l1 hits + misses = submissions")
        m.S.sv_queries
        (m.S.sv_l1_hits + m.S.sv_l1_misses);
      Alcotest.(check int)
        (lbl "plan hits + leaders + waits = l1 misses")
        m.S.sv_l1_misses
        (m.S.sv_plan_hits + m.S.sv_flight_leaders + m.S.sv_flight_waits))
    domain_counts

(* ---------------------------------------------------------------- *)
(* Single-flight: a cold herd optimizes exactly once                *)
(* ---------------------------------------------------------------- *)

let flight_names =
  [
    "rule.invocations"; "rule.candidates"; "rule.matched"; "rule.substitutes";
    "serve.flight.leaders"; "serve.flight.waits"; "cache.plan.hits";
    "cache.l1.misses";
  ]

let snap_counters obs =
  List.map (fun n -> (n, Obs.Registry.counter_value obs n)) flight_names

let delta obs before n = Obs.Registry.counter_value obs n - List.assoc n before

let test_single_flight () =
  let k = if quick then 3 else 4 in
  let w, reg_a, front_a = mk_front () in
  let q = List.hd w.H.queries in
  let obs_a = reg_a.R.obs in
  let before = snap_counters obs_a in
  let barrier = Atomic.make 0 in
  let results =
    Pool.run_each
      (List.init k (fun _ () ->
           (* spin barrier: every domain submits the identical query at
              once, so the herd is as cold and as simultaneous as the
              scheduler allows *)
           Atomic.incr barrier;
           while Atomic.get barrier < k do
             Domain.cpu_relax ()
           done;
           S.submit front_a q))
  in
  let d = delta obs_a before in
  Alcotest.(check int) "exactly one optimization led" 1
    (d "serve.flight.leaders");
  Alcotest.(check int) "every caller missed its cold L1" k
    (d "cache.l1.misses");
  (* accounting identity: each submit resolves exactly one way — led the
     flight, waited on it, or hit the plan layer the leader had already
     warmed (outer peek or the re-probe under the flights lock) *)
  Alcotest.(check int) "leaders + waits + plan hits = herd size" k
    (d "serve.flight.leaders" + d "serve.flight.waits" + d "cache.plan.hits");
  (* all callers got the same epoch and byte-identical plans *)
  (match results with
  | [] -> Alcotest.fail "empty herd"
  | (ep0, r0) :: rest ->
      let p0 = Plan.to_string r0.Opt.plan in
      List.iter
        (fun (ep, r) ->
          Alcotest.(check int) "same epoch" ep0 ep;
          Alcotest.(check string) "same plan" p0 (Plan.to_string r.Opt.plan))
        rest);
  (* the herd's rule.* work equals ONE submission's: a twin front over an
     identical registry, one sequential submit, same counter deltas *)
  let _, reg_b, front_b = mk_front () in
  let obs_b = reg_b.R.obs in
  let before_b = snap_counters obs_b in
  ignore (S.submit front_b q);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "herd %s = one submission's" n)
        (delta obs_b before_b n) (d n))
    [ "rule.invocations"; "rule.candidates"; "rule.matched"; "rule.substitutes" ]

(* ---------------------------------------------------------------- *)
(* Differential: N-domain serving == sequential optimization        *)
(* ---------------------------------------------------------------- *)

(* Without churn the epoch is fixed, so every observation must report the
   registry's epoch and carry exactly the plan the plain sequential
   optimizer produces for that query. *)
let diff_prop =
  QCheck.Test.make
    ~name:"serve: N-domain serving == sequential optimization at the epoch"
    ~count:(Helpers.qcheck_count (if quick then 4 else 10))
    QCheck.small_nat
    (fun salt ->
      let w = Lazy.force wl in
      let registry = R.create w.H.schema in
      List.iter (R.add_prebuilt registry) (H.take 60 w.H.views);
      Mv_relalg.Intern.freeze ();
      let f = S.front registry w.H.stats in
      let queries = Array.of_list w.H.queries in
      let nq = Array.length queries in
      let per_domain = if quick then 4 else 6 in
      let jobs =
        List.map
          (fun domains ->
            List.init domains (fun d () ->
                List.init per_domain (fun i ->
                    let idx = (salt + d + (domains * i)) mod nq in
                    let ep, r = S.submit f queries.(idx) in
                    (idx, ep, Plan.to_string r.Opt.plan))))
          domain_counts
      in
      let observations = List.concat_map (fun js -> List.concat (Pool.run_each js)) jobs in
      let ep0 = R.epoch registry in
      List.for_all
        (fun (idx, ep, p) ->
          ep = ep0
          && String.equal p
               (Plan.to_string
                  (Opt.optimize registry w.H.stats queries.(idx)).Opt.plan))
        observations)

(* ---------------------------------------------------------------- *)
(* Obs: the per-domain L1 counters lose no updates                  *)
(* ---------------------------------------------------------------- *)

(* The L1 caches are per-domain by construction but their hit/miss
   counters are shared atomics: across any interleaving, every submit
   lands in exactly one of the two. *)
let l1_counter_prop =
  QCheck.Test.make
    ~name:"serve: cache.l1 hits + misses = total submissions across domains"
    ~count:(Helpers.qcheck_count (if quick then 4 else 10))
    QCheck.(int_range 20 80)
    (fun per_domain ->
      let w, registry, f = mk_front ~n:30 () in
      let obs = registry.R.obs in
      let cval n = Obs.Registry.counter_value obs n in
      let h0 = cval "cache.l1.hits" and m0 = cval "cache.l1.misses" in
      let queries = Array.of_list w.H.queries in
      let nq = Array.length queries in
      let k = 3 in
      ignore
        (Pool.run_each
           (List.init k (fun d () ->
                for i = 0 to per_domain - 1 do
                  ignore (S.submit f queries.((d + i) mod nq))
                done)));
      cval "cache.l1.hits" - h0 + (cval "cache.l1.misses" - m0)
      = k * per_domain)

(* ---------------------------------------------------------------- *)
(* Trace: capacity-0 ring under always-on phase histograms          *)
(* ---------------------------------------------------------------- *)

(* A default registry records no rule trace (capacity-0 ring) but always
   feeds the optimizer.phase.* histograms. Concurrent optimizations plus
   a reader hammering the trace accessors and the JSON snapshot must
   never raise, never report a phantom event, and still advance the
   histograms. *)
let test_trace_capacity0_concurrent () =
  let w, registry, _ = mk_front ~n:30 () in
  let obs = registry.R.obs in
  let tr = Obs.Registry.trace obs in
  let queries = Array.of_list w.H.queries in
  let nq = Array.length queries in
  let per_domain = if quick then 8 else 20 in
  let nworkers = 2 in
  let finished = Atomic.make 0 in
  let reader () =
    let snaps = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      if Obs.Trace.length tr <> 0 || Obs.Trace.total tr <> 0 then
        Alcotest.fail "capacity-0 trace reported events";
      ignore (Obs.Trace.events tr);
      ignore (Obs.Registry.to_json obs);
      incr snaps;
      if Atomic.get finished >= nworkers then continue_ := false
    done;
    !snaps
  in
  let worker d () =
    for i = 0 to per_domain - 1 do
      ignore (Opt.optimize registry w.H.stats queries.((d + i) mod nq))
    done;
    Atomic.incr finished;
    0
  in
  (match Pool.run_each (reader :: List.init nworkers worker) with
  | snaps :: _ -> Alcotest.(check bool) "reader ran" true (snaps >= 1)
  | [] -> Alcotest.fail "run_each returned nothing");
  Alcotest.(check int) "still no trace events" 0 (Obs.Trace.length tr);
  let h = Obs.Registry.histogram obs "optimizer.phase.total" in
  Alcotest.(check bool) "phase histograms advanced" true
    (Obs.Instrument.count h >= nworkers * per_domain)

let suite =
  [
    ( "serve_linearizable",
      [
        Alcotest.test_case
          "observations under churn replay against their epoch's state"
          `Quick test_linearizable;
      ] );
    ( "serve_writes",
      [
        Alcotest.test_case
          "delta batches + staleness flips under concurrent serving" `Quick
          test_serve_under_writes;
      ] );
    ( "serve_flight",
      [
        Alcotest.test_case "cold herd elects exactly one leader" `Quick
          test_single_flight;
      ] );
    ( "serve_stress",
      [
        Helpers.qtest diff_prop;
        Helpers.qtest l1_counter_prop;
        Alcotest.test_case "capacity-0 trace under concurrent phase timing"
          `Quick test_trace_capacity0_concurrent;
      ] );
  ]
