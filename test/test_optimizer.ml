(** Optimizer tests: plan correctness (every emitted plan computes the
    query's relation, with or without views), the Example 4 preaggregation
    path, configuration behaviour, and cost-based view choice. *)

module Spjg = Mv_relalg.Spjg
module Opt = Mv_opt.Optimizer

let schema = Mv_tpch.Schema.schema

let db = lazy (Mv_tpch.Datagen.generate ~seed:47 ~scale:2 ())

let stats = lazy (Mv_engine.Database.stats (Lazy.force db))

let check_plan_correct ?(registry = Mv_core.Registry.create schema) query_sql =
  let query = Mv_sql.Parser.parse_query schema query_sql in
  let db = Lazy.force db in
  let r = Opt.optimize registry (Lazy.force stats) query in
  let direct = Mv_engine.Exec.execute db query in
  let via = Mv_opt.Plan_exec.execute db query r.Opt.plan in
  if not (Mv_engine.Relation.same_bag direct via) then
    Alcotest.failf "plan computes a different relation.\nquery: %s\nplan:\n%s"
      query_sql
      (Mv_opt.Plan.to_string r.Opt.plan);
  r

let test_single_table () =
  ignore (check_plan_correct "select l_orderkey from lineitem where l_quantity >= 30")

let test_join_order_chain () =
  ignore
    (check_plan_correct
       "select l_orderkey, c_name from lineitem, orders, customer where \
        l_orderkey = o_orderkey and o_custkey = c_custkey and l_quantity <= 12")

let test_star_join () =
  ignore
    (check_plan_correct
       "select l_orderkey from lineitem, part, supplier where l_partkey = \
        p_partkey and l_suppkey = s_suppkey and p_size >= 20")

let test_aggregation_plan () =
  ignore
    (check_plan_correct
       "select o_custkey, sum(l_quantity) as q, count(*) as n from lineitem, \
        orders where l_orderkey = o_orderkey group by o_custkey")

let test_residual_join_pred () =
  ignore
    (check_plan_correct
       "select l_orderkey from lineitem, orders where l_orderkey = o_orderkey \
        and l_shipdate >= o_orderdate")

let test_cross_product_query () =
  ignore
    (check_plan_correct
       "select r_name, n_name from region, nation where r_regionkey >= 3 and \
        n_nationkey <= 2")

let make_registry views =
  let r = Mv_core.Registry.create schema in
  List.iter
    (fun (name, sql) ->
      let _, spjg = Mv_sql.Parser.parse_view schema sql in
      ignore
        (Mv_core.Registry.add_view r ~name
           ~row_count:(Mv_opt.Cost.estimate_view_rows (Lazy.force stats) spjg)
           spjg))
    views;
  r

let test_view_chosen_when_cheaper () =
  let registry =
    make_registry
      [
        ( "opt_v1",
          {| create view opt_v1 with schemabinding as
             select o_custkey, count_big(*) as cnt, sum(l_quantity) as qty
             from dbo.lineitem, dbo.orders
             where l_orderkey = o_orderkey
             group by o_custkey |} );
      ]
  in
  let r =
    check_plan_correct ~registry
      "select o_custkey, sum(l_quantity) as qty from lineitem, orders where \
       l_orderkey = o_orderkey group by o_custkey"
  in
  Alcotest.(check bool) "uses the view" true r.Opt.used_views

let test_example4_preaggregation () =
  let registry =
    make_registry
      [
        ( "opt_v4",
          {| create view opt_v4 with schemabinding as
             select o_custkey, count_big(*) as cnt,
                    sum(l_quantity * l_extendedprice) as revenue
             from dbo.lineitem, dbo.orders
             where l_orderkey = o_orderkey
             group by o_custkey |} );
      ]
  in
  let r =
    check_plan_correct ~registry
      "select c_nationkey, sum(l_quantity * l_extendedprice) as revenue from \
       lineitem, orders, customer where l_orderkey = o_orderkey and o_custkey \
       = c_custkey group by c_nationkey"
  in
  Alcotest.(check bool) "example 4 uses the view" true r.Opt.used_views

let test_noalt_produces_no_view_plans () =
  let registry =
    make_registry
      [
        ( "opt_v2",
          {| create view opt_v2 with schemabinding as
             select l_orderkey, l_quantity from dbo.lineitem |} );
      ]
  in
  let query =
    Mv_sql.Parser.parse_query schema "select l_orderkey from lineitem"
  in
  let r =
    Opt.optimize
      ~config:{ Opt.default_config with Opt.produce_substitutes = false }
      registry (Lazy.force stats) query
  in
  Alcotest.(check bool) "no views used" false r.Opt.used_views;
  (* but the rule was still invoked (the paper's NoAlt measurement mode) *)
  Alcotest.(check bool) "rule invoked" true
    ((Mv_core.Registry.stats registry).Mv_core.Registry.invocations > 0)

let test_irrelevant_view_not_used () =
  let registry =
    make_registry
      [
        ( "opt_v3",
          {| create view opt_v3 with schemabinding as
             select s_suppkey, s_name from dbo.supplier |} );
      ]
  in
  let r =
    check_plan_correct ~registry
      "select l_orderkey from lineitem where l_quantity >= 10"
  in
  Alcotest.(check bool) "irrelevant view unused" false r.Opt.used_views

(* every optimizer plan over random workload queries computes the same
   relation as direct execution — with a populated registry, so view plans
   appear regularly *)
let plan_equivalence_prop =
  let registry =
    lazy
      (let r = Mv_core.Registry.create schema in
       List.iter
         (fun (name, spjg) ->
           ignore
             (Mv_core.Registry.add_view r ~name
                ~row_count:(Mv_opt.Cost.estimate_view_rows (Lazy.force stats) spjg)
                spjg))
         (Mv_workload.Generator.views ~seed:4711 schema (Lazy.force stats) 150);
       r)
  in
  QCheck.Test.make ~name:"optimizer: plans compute the query's relation"
    ~count:150 QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 999331) in
      let q =
        Mv_workload.Generator.generate_query schema (Lazy.force stats) rng
      in
      let db = Lazy.force db in
      let r = Opt.optimize (Lazy.force registry) (Lazy.force stats) q in
      let direct = Mv_engine.Exec.execute db q in
      let via = Mv_opt.Plan_exec.execute db q r.Opt.plan in
      if not (Mv_engine.Relation.same_bag direct via) then
        QCheck.Test.fail_reportf
          "plan diverges.\nquery:\n%s\nplan:\n%s\ndirect=%d via=%d"
          (Spjg.to_sql q)
          (Mv_opt.Plan.to_string r.Opt.plan)
          (Mv_engine.Relation.cardinality direct)
          (Mv_engine.Relation.cardinality via)
      else true)

let suite =
  [
    ( "optimizer",
      [
        Alcotest.test_case "single table" `Quick test_single_table;
        Alcotest.test_case "chain join" `Quick test_join_order_chain;
        Alcotest.test_case "star join" `Quick test_star_join;
        Alcotest.test_case "aggregation" `Quick test_aggregation_plan;
        Alcotest.test_case "residual join predicate" `Quick test_residual_join_pred;
        Alcotest.test_case "cross product" `Quick test_cross_product_query;
        Alcotest.test_case "view chosen when cheaper" `Quick
          test_view_chosen_when_cheaper;
        Alcotest.test_case "example 4 via preaggregation" `Quick
          test_example4_preaggregation;
        Alcotest.test_case "NoAlt mode" `Quick test_noalt_produces_no_view_plans;
        Alcotest.test_case "irrelevant view unused" `Quick
          test_irrelevant_view_not_used;
        Helpers.qtest plan_equivalence_prop;
      ] );
  ]
