(** Match/plan cache tests.

    The differential suite ([par_cache], picked up by the @runtest-quick
    alias alongside the parallel harness smoke) drives a 200-query workload
    through the optimizer with the cache on and off, sequentially and
    sharded over domains: the plans must be byte-identical in every
    configuration. MVIEW_PAR_QUICK shrinks the workload and the domain
    grid.

    The unit suite ([cache]) covers the layers directly: match-layer
    hit/miss accounting, epoch invalidation after a drop (never a stale
    candidate set), eviction under a tiny capacity, and the
    cache/registry-pairing guard. *)

module H = Mv_experiments.Harness
module Pool = Mv_experiments.Pool
module R = Mv_core.Registry
module MC = Mv_opt.Match_cache
module Opt = Mv_opt.Optimizer
module A = Mv_relalg.Analysis

let quick = Sys.getenv_opt "MVIEW_PAR_QUICK" <> None

(* The differential workload: 200 queries in the full run, per the
   acceptance spec; a fraction of that under the quick alias. *)
let big =
  lazy (H.make_workload ~nviews:100 ~nqueries:(if quick then 40 else 200) ())

(* A small private workload for the unit tests. *)
let small = lazy (H.make_workload ~nviews:40 ~nqueries:12 ())

let setup ?shards ?capacity (w : H.workload) ~nviews =
  let reg = R.create w.H.schema in
  List.iter (R.add_prebuilt reg) (H.take nviews w.H.views);
  Mv_relalg.Intern.freeze ();
  (reg, MC.create ?shards ?capacity reg)

let pass ?cache ?(domains = 1) reg (w : H.workload) =
  let queries = Array.of_list w.H.queries in
  Pool.map_chunked ~domains (Array.length queries) (fun i ->
      let r = Opt.optimize ?cache reg w.H.stats queries.(i) in
      ( Mv_opt.Plan.to_string r.Opt.plan,
        Mv_opt.Plan.views_used r.Opt.plan ))

let counter cache name =
  match List.assoc_opt name (MC.stats cache) with Some n -> n | None -> 0

(* ---------------------------------------------------------------- *)
(* Differential: cached == uncached, at 1 and 4 domains             *)
(* ---------------------------------------------------------------- *)

let test_differential () =
  let w = Lazy.force big in
  let reg, cache = setup w ~nviews:100 in
  let baseline = pass reg w in
  Alcotest.(check bool) "workload exercises the views" true
    (List.exists (fun (_, used) -> used <> []) baseline);
  List.iter
    (fun domains ->
      let label what = Printf.sprintf "%s (%d domains)" what domains in
      let cold = pass ~cache ~domains reg w in
      let warm = pass ~cache ~domains reg w in
      Alcotest.(check bool)
        (label "cold cached pass == uncached") true (cold = baseline);
      Alcotest.(check bool)
        (label "warm cached pass == uncached") true (warm = baseline))
    (if quick then [ 1; 2 ] else [ 1; 4 ]);
  Alcotest.(check bool) "the warm passes actually hit" true
    (counter cache "cache.plan.hits" > 0)

(* ---------------------------------------------------------------- *)
(* Unit tests                                                       *)
(* ---------------------------------------------------------------- *)

let test_match_layer_accounting () =
  let w = Lazy.force small in
  let reg, cache = setup w ~nviews:40 in
  let qa = A.analyze w.H.schema (List.hd w.H.queries) in
  Alcotest.(check bool) "nothing cached yet" true
    (MC.cached_candidates cache qa = None);
  let subs1 = MC.find_substitutes cache qa in
  Alcotest.(check int) "first lookup misses" 1
    (counter cache "cache.match.misses");
  let subs2 = MC.find_substitutes cache qa in
  Alcotest.(check int) "second lookup hits" 1
    (counter cache "cache.match.hits");
  let sql = List.map Mv_core.Substitute.to_sql in
  Alcotest.(check (list string)) "hit serves the stored substitutes"
    (sql subs1) (sql subs2);
  match MC.cached_candidates cache qa with
  | None -> Alcotest.fail "candidate set not cached"
  | Some cands ->
      let names vs =
        List.sort compare (List.map (fun v -> v.Mv_core.View.name) vs)
      in
      Alcotest.(check (list string))
        "cached candidate set == the rule's"
        (names (R.candidates reg qa))
        (names cands)

(* A drop between passes must invalidate (counters move) and the next
   cached pass must agree with uncached optimization against the mutated
   registry — in particular, no plan may still use the dropped view. *)
let test_drop_invalidates_never_stale () =
  let w = Lazy.force small in
  let reg, cache = setup w ~nviews:40 in
  let cold = pass ~cache reg w in
  let dropped =
    match List.concat_map (fun (_, used) -> used) cold with
    | name :: _ -> name
    | [] -> Alcotest.fail "workload never used a view; test is vacuous"
  in
  let inval () =
    counter cache "cache.plan.invalidations"
    + counter cache "cache.match.invalidations"
  in
  let before = inval () in
  R.remove_view reg dropped;
  let cached = pass ~cache reg w in
  let direct = pass reg w in
  Alcotest.(check bool) "post-drop cached pass == uncached" true
    (cached = direct);
  Alcotest.(check bool) "the drop invalidated entries" true
    (inval () > before);
  List.iter
    (fun (_, used) ->
      Alcotest.(check bool)
        (Printf.sprintf "no plan still uses %s" dropped)
        false
        (List.mem dropped used))
    cached

let test_eviction_under_tiny_capacity () =
  let w = Lazy.force small in
  let reg, cache = setup ~shards:1 ~capacity:2 w ~nviews:40 in
  let baseline = pass reg w in
  let first = pass ~cache reg w in
  let second = pass ~cache reg w in
  (* 12 distinct queries through a 2-entry cache must evict... *)
  Alcotest.(check bool) "evictions happened" true
    (counter cache "cache.plan.evictions" > 0);
  (* ...and never change an answer *)
  Alcotest.(check bool) "first pass correct under thrash" true
    (first = baseline);
  Alcotest.(check bool) "second pass correct under thrash" true
    (second = baseline)

let test_cache_registry_pairing () =
  let w = Lazy.force small in
  let _, cache = setup w ~nviews:10 in
  let other = R.create w.H.schema in
  Alcotest.check_raises "cache from another registry is rejected"
    (Invalid_argument "Optimizer.optimize: cache belongs to another registry")
    (fun () ->
      ignore (Opt.optimize ~cache other w.H.stats (List.hd w.H.queries)))

let test_clear () =
  let w = Lazy.force small in
  let _, cache = setup w ~nviews:10 in
  let qa = A.analyze w.H.schema (List.hd w.H.queries) in
  ignore (MC.find_substitutes cache qa);
  Alcotest.(check bool) "cached" true (MC.cached_candidates cache qa <> None);
  MC.clear cache;
  Alcotest.(check bool) "cleared" true (MC.cached_candidates cache qa = None)

let suite =
  [
    ( "par_cache",
      [
        Alcotest.test_case "cache on/off differential, 1 and 4 domains"
          `Quick test_differential;
      ] );
    ( "cache",
      [
        Alcotest.test_case "match layer hit/miss accounting" `Quick
          test_match_layer_accounting;
        Alcotest.test_case "drop invalidates; nothing stale" `Quick
          test_drop_invalidates_never_stale;
        Alcotest.test_case "eviction under capacity 2" `Quick
          test_eviction_under_tiny_capacity;
        Alcotest.test_case "cache must belong to the registry" `Quick
          test_cache_registry_pairing;
        Alcotest.test_case "clear empties the shards" `Quick test_clear;
      ] );
  ]
