(** Rejection provenance: the stable [Reject] labels, the exactness of
    [Registry.explain] against the real rule (every view attributed, the
    filtered set identical to population minus candidates, the survivors'
    verdicts matching the matcher), the harness-level aggregation, and the
    interpolated histogram quantiles that feed the per-phase percentiles. *)

module Reject = Mv_core.Reject
module Registry = Mv_core.Registry
module I = Mv_obs.Instrument

let schema = Mv_tpch.Schema.schema

let all_rejects =
  [
    (Reject.Missing_tables, "missing-tables");
    (Reject.Extra_tables_not_eliminable, "extra-tables");
    (Reject.Equijoin_subsumption_failed, "equijoin-subsumption");
    (Reject.Range_subsumption_failed "l_quantity", "range-subsumption");
    (Reject.Residual_subsumption_failed "p_name like ...", "residual-subsumption");
    (Reject.Compensation_not_computable "no key", "compensation-not-computable");
    (Reject.Output_not_computable "l_tax", "output-not-computable");
    (Reject.Grouping_incompatible "finer", "grouping-incompatible");
    (Reject.View_more_aggregated, "view-more-aggregated");
    (Reject.Stale, "stale");
  ]

let test_reject_labels () =
  List.iter
    (fun (r, expected) ->
      Alcotest.(check string) ("label of " ^ expected) expected (Reject.label r))
    all_rejects;
  let labels = List.map (fun (r, _) -> Reject.label r) all_rejects in
  Alcotest.(check int) "ten constructors, ten distinct labels" 10
    (List.length (List.sort_uniq compare labels));
  (* payloads vary the message but never the aggregation key *)
  Alcotest.(check string) "label drops the payload" "range-subsumption"
    (Reject.label (Reject.Range_subsumption_failed "other_col"))

let test_reject_to_string_and_pp () =
  List.iter
    (fun (r, label) ->
      let s = Reject.to_string r in
      Alcotest.(check bool) (label ^ ": to_string non-empty") true
        (String.length s > 0);
      Alcotest.(check string) (label ^ ": pp agrees with to_string") s
        (Format.asprintf "%a" Reject.pp r))
    all_rejects;
  (* detail payloads surface in the message *)
  Alcotest.(check bool) "payload surfaces" true
    (Helpers.contains ~needle:"l_quantity"
       (Reject.to_string (Reject.Range_subsumption_failed "l_quantity")));
  let strings = List.map (fun (r, _) -> Reject.to_string r) all_rejects in
  Alcotest.(check int) "messages pairwise distinct" 10
    (List.length (List.sort_uniq compare strings))

(* A registry whose views exercise all three fates: matched, rejected by
   the matcher, and pruned by the filter tree. *)
let make_registry () =
  let registry = Registry.create schema in
  let add name sql =
    let _, vdef = Mv_sql.Parser.parse_view schema sql in
    ignore (Registry.add_view registry ~name vdef)
  in
  add "wn_hit"
    {| create view wn_hit with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 5 |};
  add "wn_narrow"
    {| create view wn_narrow with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 50 |};
  add "wn_other_table"
    {| create view wn_other_table with schemabinding as
       select o_orderkey, o_totalprice from dbo.orders
       where o_totalprice >= 0 |};
  add "wn_no_cols"
    {| create view wn_no_cols with schemabinding as
       select l_partkey from dbo.lineitem
       where l_quantity >= 5 |};
  registry

let query () =
  Mv_sql.Parser.parse_query schema
    "select l_orderkey from lineitem where l_quantity >= 10"

let test_explain_accounts_for_every_view () =
  let registry = make_registry () in
  let qa = Mv_relalg.Analysis.analyze schema (query ()) in
  let expl = Registry.explain registry qa in
  let names = List.map (fun (v, _) -> v.Mv_core.View.name) expl in
  Alcotest.(check (list string))
    "every view exactly once, registration order"
    [ "wn_hit"; "wn_narrow"; "wn_other_table"; "wn_no_cols" ]
    names;
  let fate name =
    List.assoc name
      (List.map (fun (v, e) -> (v.Mv_core.View.name, e)) expl)
  in
  (match fate "wn_hit" with
  | Registry.Matched _ -> ()
  | _ -> Alcotest.fail "wn_hit must match");
  (match fate "wn_other_table" with
  | Registry.Filtered _ -> ()
  | _ -> Alcotest.fail "wn_other_table must be pruned (wrong table)");
  (* wn_narrow's range cannot cover the query; whether the range level
     prunes it or the matcher rejects it, the cause must name ranges *)
  (match fate "wn_narrow" with
  | Registry.Filtered stage ->
      Alcotest.(check bool) "pruned at a range-aware stage" true
        (Helpers.contains ~needle:"range"
           (Mv_core.Filter_tree.stage_name stage))
  | Registry.Rejected r ->
      Alcotest.(check string) "rejected for its range" "range-subsumption"
        (Reject.label r)
  | Registry.Matched _ -> Alcotest.fail "wn_narrow cannot cover [10,inf)")

let test_explain_exact_vs_rule () =
  let registry = make_registry () in
  let qa = Mv_relalg.Analysis.analyze schema (query ()) in
  let expl = Registry.explain registry qa in
  (* the filtered set is precisely the population minus the candidates *)
  let candidate_names =
    List.map
      (fun (v : Mv_core.View.t) -> v.Mv_core.View.name)
      (Registry.candidates registry qa)
  in
  List.iter
    (fun (v, e) ->
      let name = v.Mv_core.View.name in
      let is_candidate = List.mem name candidate_names in
      match e with
      | Registry.Filtered _ ->
          Alcotest.(check bool) (name ^ ": filtered iff not a candidate")
            false is_candidate
      | Registry.Rejected _ | Registry.Matched _ ->
          Alcotest.(check bool) (name ^ ": survivor iff candidate") true
            is_candidate)
    expl;
  (* matched verdicts agree with the rule's substitute count *)
  let matched =
    List.filter (fun (_, e) -> match e with Registry.Matched _ -> true | _ -> false) expl
  in
  let subs = Registry.find_substitutes registry qa in
  Alcotest.(check int) "explain's matches = the rule's substitutes"
    (List.length subs) (List.length matched)

(* Freshness provenance: a stale view is rejected with [Stale] under
   fresh-only matching — and only then; an identical fresh twin keeps
   matching, and clearing the mark restores the stale one. *)
let test_explain_stale_freshness () =
  let registry = Registry.create schema in
  let add name =
    let sql =
      Printf.sprintf
        "create view %s with schemabinding as select l_orderkey, l_quantity \
         from dbo.lineitem where l_quantity >= 5"
        name
    in
    let _, vdef = Mv_sql.Parser.parse_view schema sql in
    Registry.add_view registry ~name vdef
  in
  let _fresh_v = add "wn_fresh" in
  let stale_v = add "wn_stale" in
  Mv_core.View.mark_stale stale_v;
  let qa = Mv_relalg.Analysis.analyze schema (query ()) in
  let fate ?fresh_only name =
    match
      List.find_opt
        (fun ((v : Mv_core.View.t), _) -> v.Mv_core.View.name = name)
        (Registry.explain ?fresh_only registry qa)
    with
    | Some (_, e) -> e
    | None -> Alcotest.fail (name ^ " missing from explain")
  in
  (* default matching ignores staleness entirely *)
  (match fate "wn_stale" with
  | Registry.Matched _ -> ()
  | _ -> Alcotest.fail "stale view must still match by default");
  (* fresh-only: the stale twin is rejected with exactly [Stale] *)
  (match fate ~fresh_only:true "wn_stale" with
  | Registry.Rejected Reject.Stale -> ()
  | Registry.Rejected r ->
      Alcotest.fail ("stale view rejected with " ^ Reject.label r)
  | _ -> Alcotest.fail "stale view must be Rejected Stale under fresh-only");
  (match fate ~fresh_only:true "wn_fresh" with
  | Registry.Matched _ -> ()
  | _ -> Alcotest.fail "the fresh twin must keep matching under fresh-only");
  (* the aggregation key for the new cause *)
  let causes =
    List.map
      (fun (_, e) ->
        match e with
        | Registry.Matched _ -> "matched"
        | Registry.Filtered s -> "filter:" ^ Mv_core.Filter_tree.stage_name s
        | Registry.Rejected r -> "reject:" ^ Reject.label r)
      (Registry.explain ~fresh_only:true registry qa)
  in
  Alcotest.(check bool) "aggregates as reject:stale" true
    (List.mem "reject:stale" causes);
  (* union substitutes skip stale parts under fresh-only *)
  Alcotest.(check bool) "find_substitutes drops the stale view" true
    (List.for_all
       (fun (s : Mv_core.Substitute.t) ->
         s.Mv_core.Substitute.view.Mv_core.View.name <> "wn_stale")
       (Registry.find_substitutes ~fresh_only:true registry qa));
  (* marking by table covers every view over it, once *)
  Mv_core.View.mark_fresh stale_v;
  Alcotest.(check int) "mark_stale hits both lineitem views" 2
    (Registry.mark_stale registry ~tables:[ "lineitem" ]);
  Alcotest.(check int) "already-stale views are not re-marked" 0
    (Registry.mark_stale registry ~tables:[ "lineitem" ]);
  Alcotest.(check int) "unrelated tables mark nothing" 0
    (Registry.mark_stale registry ~tables:[ "region" ]);
  (* clearing the mark restores matching *)
  Mv_core.View.mark_fresh stale_v;
  match fate ~fresh_only:true "wn_stale" with
  | Registry.Matched _ -> ()
  | _ -> Alcotest.fail "mark_fresh must restore fresh-only matching"

let test_harness_whynot_aggregation () =
  let w =
    Mv_experiments.Harness.make_workload ~nviews:30 ~nqueries:6 ()
  in
  let causes = Mv_experiments.Harness.whynot w ~nviews:30 in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 causes in
  Alcotest.(check int) "every (query, view) pair attributed once" (6 * 30)
    total;
  List.iter
    (fun (cause, n) ->
      Alcotest.(check bool) (cause ^ ": positive count") true (n > 0);
      Alcotest.(check bool) (cause ^ ": known cause shape") true
        (cause = "matched"
        || Helpers.contains ~needle:"filter:" cause
        || Helpers.contains ~needle:"reject:" cause))
    causes;
  (* sorted by descending count *)
  let counts = List.map snd causes in
  Alcotest.(check bool) "sorted by descending count" true
    (List.sort (fun a b -> compare b a) counts = counts)

let test_quantile_interpolation () =
  let h = I.histogram () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (I.quantile h 0.5);
  for i = 1 to 100 do
    I.observe h (float_of_int i)
  done;
  (* the true median is 50.5; the bucket alone would answer 64 (the
     (32, 64] power-of-two bound), interpolation lands near the truth *)
  let p50 = I.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "interpolated p50 %.2f near the median" p50)
    true
    (p50 >= 45.0 && p50 <= 56.0);
  Alcotest.(check (float 1e-9)) "quantile_upper keeps the bucket bound" 64.0
    (I.quantile_upper h 0.5);
  (* interpolation clamps to the observed extremes *)
  Alcotest.(check bool) "p0 >= min" true (I.quantile h 0.0 >= 1.0);
  Alcotest.(check bool) "p100 <= max" true (I.quantile h 1.0 <= 100.0);
  (* monotone in q *)
  let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ] in
  let vs = List.map (I.quantile h) qs in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "quantiles monotone" true (mono vs);
  (* a single observation is answered exactly *)
  let h1 = I.histogram () in
  I.observe h1 3.25;
  Alcotest.(check (float 1e-9)) "single value exact" 3.25 (I.quantile h1 0.5);
  Alcotest.(check (float 1e-9)) "single value exact at p99" 3.25
    (I.quantile h1 0.99)

let suite =
  [
    ( "whynot",
      [
        Alcotest.test_case "reject labels stable and distinct" `Quick
          test_reject_labels;
        Alcotest.test_case "reject to_string/pp over all constructors" `Quick
          test_reject_to_string_and_pp;
        Alcotest.test_case "explain accounts for every view" `Quick
          test_explain_accounts_for_every_view;
        Alcotest.test_case "explain exact against the rule" `Quick
          test_explain_exact_vs_rule;
        Alcotest.test_case "stale views under fresh-only matching" `Quick
          test_explain_stale_freshness;
        Alcotest.test_case "harness aggregation covers all pairs" `Quick
          test_harness_whynot_aggregation;
        Alcotest.test_case "interpolated quantiles" `Quick
          test_quantile_interpolation;
      ] );
  ]
