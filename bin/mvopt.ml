(** mvopt — command-line front end to the view-matching library.

    Subcommands:
      parse    parse a statement and print its normalized SPJG form
      match    match a query against one or more view definitions
      explain  optimize a query against registered views, print the plan
               (--trace / --trace-out FILE record the optimization as a
               span tree, exportable as Chrome/Perfetto trace_event JSON)
      why-not  explain why a specific view was not used for a query: the
               exact filter-tree stage that pruned it or the matcher's
               rejection reason
      bench    measure batch optimization, optionally over several domains
      cache-stats  serve repeated queries through the match/plan cache and
               print its counters (hit/miss/eviction/invalidation)
      serve    sustain an open-loop query stream over OCaml domains against
               RCU registry snapshots under add/drop churn; print qps and
               latency percentiles, replay sampled observations sequentially
      top      run a ledger-observed workload and print the per-view health
               table (times candidate/matched/chosen, estimated benefit,
               maintenance seconds) sorted by net benefit, dead views flagged
      metrics  the same run exported in OpenMetrics text format: obs
               counters/timers/histograms, the per-view ledger and the
               timeline windows
      refresh  demonstrate the freshness protocol: stale marks on
               unmaintained writes, fresh-only rejection, rematerialization
               and incremental maintenance (Ivm.apply) restoring freshness
      demo     a self-contained end-to-end demonstration
      generate print a random section-5 workload
      advise   mine view candidates from a generated workload, select a set
               under a storage budget (greedy + local-search with a
               maintenance-cost term), register the picks, and report
               workload cost before/after

    All commands run against the built-in TPC-H catalog. Statements can be
    given inline or in files (one statement per file). *)

open Cmdliner

let schema = Mv_tpch.Schema.schema

let read_arg s =
  if Sys.file_exists s then (
    let ic = open_in s in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b)
  else s

(* Every registry/metrics JSON dump below goes through
   [Mv_obs.Export.registry_json], so all subcommands emit the one schema:
   {"metrics": <obs registry>, "timeline"?: ..., "health"?: ...,
    <command section>...}. *)
let dump_registry ?timeline ?health ?(extra = []) obs file =
  let extra =
    (match health with
    | None -> []
    | Some h -> [ ("health", Mv_core.Health.to_json h) ])
    @ extra
  in
  Mv_experiments.Report.write_json file
    (Mv_obs.Export.registry_json ?timeline ~extra obs);
  Printf.printf "wrote %s\n" file

(* ---- parse ---- *)

let parse_cmd =
  let stmt =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STATEMENT" ~doc:"SQL text or a file containing it.")
  in
  let run stmt =
    let src = read_arg stmt in
    match Mv_sql.Parser.parse_statement schema src with
    | `Query q ->
        Printf.printf "-- normalized query block\n%s\n" (Mv_relalg.Spjg.to_sql q)
    | `View (name, v) ->
        Printf.printf "-- view %s\n%s\n" name (Mv_relalg.Spjg.to_sql v);
        (match Mv_relalg.Spjg.check_indexable v with
        | Ok () -> print_endline "-- indexable: yes"
        | Error e -> Printf.printf "-- indexable: no (%s)\n" e)
    | exception Mv_sql.Parser.Parse_error e ->
        Printf.eprintf "parse error: %s\n" e;
        exit 1
    | exception Mv_sql.Lexer.Lex_error e ->
        Printf.eprintf "lex error: %s\n" e;
        exit 1
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a statement and print its normalized form")
    Term.(const run $ stmt)

(* ---- match ---- *)

let match_cmd =
  let views =
    Arg.(
      non_empty & opt_all string []
      & info [ "v"; "view" ] ~docv:"VIEW"
          ~doc:"CREATE VIEW statement (or file). Repeatable.")
  in
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"SELECT statement (or file).")
  in
  let relaxed =
    Arg.(
      value & flag
      & info [ "relaxed-nulls" ]
          ~doc:"Enable the null-rejecting foreign-key relaxation (section 3.2).")
  in
  let backjoins =
    Arg.(
      value & flag
      & info [ "backjoins" ]
          ~doc:"Enable base-table backjoins for missing columns (section 7).")
  in
  let union =
    Arg.(
      value & flag
      & info [ "union" ]
          ~doc:
            "Also look for a UNION-of-views substitute when no single view \
             matches (section 7).")
  in
  let run views query relaxed backjoins union =
    let registry =
      Mv_core.Registry.create ~relaxed_nulls:relaxed ~backjoins schema
    in
    List.iter
      (fun v ->
        let name, spjg = Mv_sql.Parser.parse_view schema (read_arg v) in
        ignore (Mv_core.Registry.add_view registry ~name spjg))
      views;
    let q = Mv_sql.Parser.parse_query schema (read_arg query) in
    let qa = Mv_relalg.Analysis.analyze schema q in
    let any = ref false in
    List.iter
      (fun view ->
        match
          Mv_core.Matcher.match_view ~relaxed_nulls:relaxed ~backjoins
            ~query:qa view
        with
        | Ok s ->
            any := true;
            Printf.printf "view %s: MATCH\n%s\n\n" view.Mv_core.View.name
              (Mv_core.Substitute.to_sql s)
        | Error r ->
            Printf.printf "view %s: rejected (%s)\n\n" view.Mv_core.View.name
              (Mv_core.Reject.to_string r))
      registry.Mv_core.Registry.views;
    if (not !any) && union then (
      match Mv_core.Registry.find_union_substitutes registry qa with
      | Some u ->
          any := true;
          Printf.printf "UNION substitute:\n%s\n"
            (Mv_core.Union_substitute.to_sql u)
      | None -> ());
    if not !any then exit 2
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:"Match a query against view definitions and print substitutes")
    Term.(const run $ views $ query $ relaxed $ backjoins $ union)

(* ---- explain ---- *)

let explain_cmd =
  let views =
    Arg.(
      value & opt_all string []
      & info [ "v"; "view" ] ~docv:"VIEW" ~doc:"CREATE VIEW statement (or file).")
  in
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"SELECT statement (or file).")
  in
  let execute =
    Arg.(
      value & flag
      & info [ "execute" ]
          ~doc:"Also generate a small database, run the plan, and verify it \
                against direct execution.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "After optimizing, print the metrics table (rule counters, \
             filter-tree per-level candidate flow, optimizer memo counters) \
             and the rule trace.")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record the optimization as a hierarchical span tree (analysis, \
             filter-tree stages, per-view match attempts with rejection \
             reasons, costing) and print it.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the span tree as Chrome/Perfetto trace_event JSON to \
             $(docv) (open in ui.perfetto.dev or chrome://tracing). Implies \
             span recording.")
  in
  let json_file =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Dump the obs registry (rule/filter-tree/optimizer instruments) \
             and the per-view health ledger as JSON — the same schema every \
             other subcommand's --json emits.")
  in
  let run views query execute show_stats trace trace_out json_file =
    let registry = Mv_core.Registry.create ~tracing:show_stats schema in
    let stats = Mv_tpch.Datagen.synthetic_stats () in
    List.iter
      (fun v ->
        let name, spjg = Mv_sql.Parser.parse_view schema (read_arg v) in
        ignore
          (Mv_core.Registry.add_view registry ~name
             ~row_count:(Mv_opt.Cost.estimate_view_rows stats spjg)
             spjg))
      views;
    let q = Mv_sql.Parser.parse_query schema (read_arg query) in
    let collector =
      if trace || trace_out <> None then Some (Mv_obs.Span.create ()) else None
    in
    let spans = Option.map Mv_obs.Span.root collector in
    let r = Mv_opt.Optimizer.optimize ?spans registry stats q in
    Printf.printf "estimated cost: %.0f, estimated rows: %.0f\n"
      r.Mv_opt.Optimizer.cost r.Mv_opt.Optimizer.rows;
    Printf.printf "plan:\n%s" (Mv_opt.Plan.to_string r.Mv_opt.Optimizer.plan);
    Printf.printf "uses materialized views: %b (%s)\n"
      r.Mv_opt.Optimizer.used_views
      (String.concat "," (Mv_opt.Plan.views_used r.Mv_opt.Optimizer.plan));
    (match r.Mv_opt.Optimizer.pruned_views with
    | [] -> ()
    | pruned ->
        Printf.printf "cost-bound pruned candidates: %s\n"
          (String.concat "," (List.sort_uniq compare pruned)));
    if execute then begin
      let db = Mv_tpch.Datagen.generate ~seed:1 ~scale:2 () in
      let exec_stats = Mv_engine.Database.stats db in
      let direct = Mv_engine.Exec.execute db q in
      let via, reports =
        Mv_opt.Plan_exec.execute_report ~adaptive:true ~stats:exec_stats db q
          r.Mv_opt.Optimizer.plan
      in
      Printf.printf "\nexecution check: %d rows, plan matches direct: %b\n"
        (Mv_engine.Relation.cardinality direct)
        (Mv_engine.Relation.same_bag direct via);
      Printf.printf "%-44s %-10s %12s %9s\n" "node" "strategy" "est rows"
        "actual";
      List.iter
        (fun (n : Mv_opt.Plan_exec.node_report) ->
          Printf.printf "%-44s %-10s %12.1f %9d\n" n.Mv_opt.Plan_exec.nr_label
            n.Mv_opt.Plan_exec.nr_strategy n.Mv_opt.Plan_exec.nr_est
            n.Mv_opt.Plan_exec.nr_actual)
        reports
    end;
    if show_stats then begin
      let obs = registry.Mv_core.Registry.obs in
      print_newline ();
      print_string (Mv_obs.Registry.render obs);
      let tr = Mv_obs.Registry.trace obs in
      if Mv_obs.Trace.length tr > 0 then begin
        print_endline "rule trace:";
        List.iter
          (fun (e : Mv_obs.Trace.event) ->
            Printf.printf "  #%d %s %s\n" e.Mv_obs.Trace.seq
              e.Mv_obs.Trace.name
              (Mv_obs.Json.to_string ~minify:true
                 (Mv_obs.Json.Obj e.Mv_obs.Trace.fields)))
          (Mv_obs.Trace.events tr)
      end
    end;
    (match json_file with
    | None -> ()
    | Some file ->
        dump_registry ~health:registry.Mv_core.Registry.health
          registry.Mv_core.Registry.obs file);
    match collector with
    | None -> ()
    | Some col ->
        if trace then begin
          print_newline ();
          print_string (Mv_obs.Span.render col)
        end;
        (match trace_out with
        | None -> ()
        | Some file ->
            Mv_experiments.Report.write_json file
              (Mv_obs.Span.to_trace_event_json col);
            Printf.printf "wrote %s\n" file)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Optimize a query against views; print the plan")
    Term.(
      const run $ views $ query $ execute $ stats_flag $ trace_flag $ trace_out
      $ json_file)

(* ---- why-not ---- *)

let whynot_cmd =
  let views =
    Arg.(
      non_empty & opt_all string []
      & info [ "v"; "view" ] ~docv:"VIEW"
          ~doc:"CREATE VIEW statement (or file). Repeatable.")
  in
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"SELECT statement (or file).")
  in
  let target =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"VIEW-NAME"
          ~doc:"Name of the registered view to explain.")
  in
  let run views query target =
    let registry = Mv_core.Registry.create schema in
    let stats = Mv_tpch.Datagen.synthetic_stats () in
    List.iter
      (fun v ->
        let name, spjg = Mv_sql.Parser.parse_view schema (read_arg v) in
        ignore
          (Mv_core.Registry.add_view registry ~name
             ~row_count:(Mv_opt.Cost.estimate_view_rows stats spjg)
             spjg))
      views;
    if Mv_core.Registry.find_view registry target = None then begin
      Printf.eprintf "unknown view %s (registered: %s)\n" target
        (String.concat ", "
           (List.map
              (fun v -> v.Mv_core.View.name)
              registry.Mv_core.Registry.views));
      exit 1
    end;
    let q = Mv_sql.Parser.parse_query schema (read_arg query) in
    let qa = Mv_relalg.Analysis.analyze schema q in
    let _, expl =
      List.find
        (fun (v, _) -> v.Mv_core.View.name = target)
        (Mv_core.Registry.explain registry qa)
    in
    match expl with
    | Mv_core.Registry.Filtered stage ->
        Printf.printf
          "view %s cannot answer the query: pruned by the filter tree at the \
           %s stage\n"
          target
          (Mv_core.Filter_tree.stage_name stage);
        exit 2
    | Mv_core.Registry.Rejected r ->
        Printf.printf
          "view %s survived the filter tree but failed matching: %s (%s)\n"
          target
          (Mv_core.Reject.label r)
          (Mv_core.Reject.to_string r);
        exit 2
    | Mv_core.Registry.Matched s ->
        Printf.printf "view %s CAN answer the query; substitute:\n%s\n" target
          (Mv_core.Substitute.to_sql s);
        let r = Mv_opt.Optimizer.optimize registry stats q in
        let used = Mv_opt.Plan.views_used r.Mv_opt.Optimizer.plan in
        if List.mem target used then
          print_endline "the optimizer's final plan uses it"
        else if List.mem target r.Mv_opt.Optimizer.pruned_views then
          Printf.printf
            "but its substitute was cost-bound pruned: a partial cost \
             already exceeded the best complete plan (cost %.0f, uses: %s)\n"
            r.Mv_opt.Optimizer.cost
            (match used with [] -> "no views" | vs -> String.concat "," vs)
        else
          Printf.printf
            "but the optimizer's final plan does not use it (cost %.0f, uses: \
             %s)\n"
            r.Mv_opt.Optimizer.cost
            (match used with [] -> "no views" | vs -> String.concat "," vs)
  in
  Cmd.v
    (Cmd.info "why-not"
       ~doc:
         "Explain why a specific view was (or was not) used for a query: the \
          exact filter-tree stage that pruned it, the matcher's rejection \
          reason, or its substitute and the final plan's verdict")
    Term.(const run $ views $ query $ target)

(* ---- generate ---- *)

let generate_cmd =
  let n =
    Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"How many statements.")
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("views", `Views); ("queries", `Queries) ]) `Views
      & info [ "kind" ] ~doc:"What to generate: views or queries.")
  in
  let seed =
    Arg.(value & opt int 1001 & info [ "seed" ] ~doc:"PRNG seed.")
  in
  let run n kind seed =
    let stats = Mv_tpch.Datagen.synthetic_stats () in
    match kind with
    | `Views ->
        List.iter
          (fun (name, v) ->
            Printf.printf "create view %s with schemabinding as\n%s\n\n" name
              (Mv_relalg.Spjg.to_sql v))
          (Mv_workload.Generator.views ~seed schema stats n)
    | `Queries ->
        List.iter
          (fun q -> Printf.printf "%s\n\n" (Mv_relalg.Spjg.to_sql q))
          (Mv_workload.Generator.queries ~seed schema stats n)
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Print a random section-5 workload (views or queries)")
    Term.(const run $ n $ kind $ seed)

(* ---- advise ---- *)

let advise_cmd =
  let queries =
    Arg.(
      value & opt int 40
      & info [ "queries" ] ~docv:"N" ~doc:"Workload query batch size.")
  in
  let candidates =
    Arg.(
      value & opt int 200
      & info [ "candidates" ] ~docv:"N"
          ~doc:"Cap on the mined candidate pool offered to the selector.")
  in
  let budget =
    Arg.(
      value & opt float 0.05
      & info [ "budget" ] ~docv:"FRAC"
          ~doc:
            "Storage budget as a fraction of the candidate pool's total \
             estimated size.")
  in
  let seed =
    Arg.(value & opt int 2002 & info [ "seed" ] ~doc:"Workload PRNG seed.")
  in
  let write_fraction =
    Arg.(
      value & opt float 0.1
      & info [ "write-fraction" ] ~docv:"F"
          ~doc:
            "Maintenance events per workload query: higher values penalize \
             wide views through the maintenance-cost term.")
  in
  let from_ledger =
    Arg.(
      value & flag
      & info [ "from-ledger" ]
          ~doc:
            "Re-price the candidates with observed per-query frequencies: a \
             skewed trace of the workload is optimized first so the \
             registry's health ledger records how often each query actually \
             arrives, then selection runs once uniformly and once with the \
             ledger frequencies as weights, and both selections are costed \
             with the real optimizer on the observed trace. Exits 3 if the \
             ledger-driven selection loses to the uniform one or breaks the \
             budget.")
  in
  let run nqueries candidates budget_frac seed write_fraction from_ledger =
    let stats = Mv_tpch.Datagen.synthetic_stats () in
    let qs = Mv_workload.Generator.queries ~seed schema stats nqueries in
    let mined = Mv_workload.Miner.mine qs in
    let defs =
      List.filteri (fun i _ -> i < candidates) (Mv_workload.Miner.definitions mined)
    in
    Printf.printf "mined %d candidates from %d queries (offering %d)\n"
      (List.length mined) nqueries (List.length defs);
    let total_size =
      List.fold_left
        (fun acc (name, spjg) ->
          acc
          +. float_of_int (Mv_opt.Cost.estimate_view_rows ~name stats spjg))
        0.0 defs
    in
    let config =
      {
        Mv_opt.Advisor.default_config with
        budget = budget_frac *. total_size;
        write_fraction;
      }
    in
    let print_picks (advice : Mv_opt.Advisor.advice) =
      Printf.printf
        "budget %.0f rows (%.0f%% of pool), %d considered, %d rejected\n\n"
        config.Mv_opt.Advisor.budget (100.0 *. budget_frac)
        advice.Mv_opt.Advisor.considered advice.Mv_opt.Advisor.rejected;
      Printf.printf "%-9s %10s %12s %12s  definition\n" "pick" "rows" "benefit"
        "maint";
      List.iter
        (fun (p : Mv_opt.Advisor.pick) ->
          let sql = Mv_relalg.Spjg.to_sql p.Mv_opt.Advisor.spjg in
          let first_line =
            match String.index_opt sql '\n' with
            | Some i -> String.sub sql 0 i ^ " ..."
            | None -> sql
          in
          Printf.printf "%-9s %10d %12.0f %12.0f  %s\n" p.Mv_opt.Advisor.name
            p.Mv_opt.Advisor.rows p.Mv_opt.Advisor.benefit
            p.Mv_opt.Advisor.maint first_line)
        advice.Mv_opt.Advisor.picks
    in
    let advice =
      Mv_opt.Advisor.advise ~config schema stats ~candidates:defs ~queries:qs
    in
    if not from_ledger then begin
      print_picks advice;
      (* register the picks through the dynamic registry and verify the
         modeled improvement against the real optimizer *)
      let registry = Mv_core.Registry.create schema in
      let total reg =
        List.fold_left
          (fun acc q ->
            acc
            +. (Mv_opt.Optimizer.optimize reg stats q).Mv_opt.Optimizer.cost)
          0.0 qs
      in
      let before = total registry in
      let epoch0 = Mv_core.Registry.epoch registry in
      Mv_opt.Advisor.register_picks registry advice;
      let after = total registry in
      Printf.printf
        "\nregistered %d picks (registry epoch %d -> %d)\n\
         workload cost before %.0f, after %.0f (%.2fx); model said %.0f -> \
         %.0f\n"
        (List.length advice.Mv_opt.Advisor.picks)
        epoch0
        (Mv_core.Registry.epoch registry)
        before after
        (if after > 0.0 then before /. after else 1.0)
        advice.Mv_opt.Advisor.cost_before advice.Mv_opt.Advisor.cost_after
    end
    else begin
      (* ---- --from-ledger: observe a skewed trace, re-price, compare ----
         The trace repeats query i roughly zipf-fashion, so the observed
         frequencies genuinely differ from the generator's uniform
         assumption; the ledger (not the trace list) is the only source of
         the weights, exactly as a live server would use it. *)
      let trace_reg = Mv_core.Registry.create schema in
      let trace =
        List.concat
          (List.mapi
             (fun i q -> List.init (max 1 (16 / (i + 1))) (fun _ -> q))
             qs)
      in
      List.iter
        (fun q -> ignore (Mv_opt.Optimizer.optimize trace_reg stats q))
        trace;
      let health = trace_reg.Mv_core.Registry.health in
      let freq = Hashtbl.create 64 in
      List.iter
        (fun (q, n) -> Hashtbl.replace freq (Mv_relalg.Spjg.to_sql q) n)
        (Mv_core.Health.query_frequencies health);
      let weight q =
        float_of_int
          (Option.value ~default:0
             (Hashtbl.find_opt freq (Mv_relalg.Spjg.to_sql q)))
      in
      let weights = Array.of_list (List.map weight qs) in
      Printf.printf
        "observed trace: %d submissions over %d distinct queries (ledger)\n"
        (Mv_core.Health.queries_total health)
        (List.length (Mv_core.Health.query_frequencies health));
      let ledger_advice =
        Mv_opt.Advisor.advise ~config ~weights schema stats ~candidates:defs
          ~queries:qs
      in
      print_picks ledger_advice;
      (* cost both selections with the real optimizer on the observed
         trace: each query's plan cost times how often the ledger saw it *)
      let trace_cost (advice : Mv_opt.Advisor.advice) =
        let reg = Mv_core.Registry.create schema in
        Mv_opt.Advisor.register_picks reg advice;
        List.fold_left
          (fun acc q ->
            acc
            +. weight q
               *. (Mv_opt.Optimizer.optimize reg stats q).Mv_opt.Optimizer.cost)
          0.0 qs
      in
      let uniform_cost = trace_cost advice in
      let ledger_cost = trace_cost ledger_advice in
      let used (a : Mv_opt.Advisor.advice) =
        List.fold_left
          (fun acc (p : Mv_opt.Advisor.pick) ->
            acc +. float_of_int p.Mv_opt.Advisor.rows)
          0.0 a.Mv_opt.Advisor.picks
      in
      let feasible =
        used ledger_advice <= config.Mv_opt.Advisor.budget +. 1e-6
      in
      Printf.printf
        "\nobserved-trace cost: generator-priced picks %.0f, ledger-priced \
         picks %.0f (%d vs %d picks, ledger budget used %.0f/%.0f)\n"
        uniform_cost ledger_cost
        (List.length advice.Mv_opt.Advisor.picks)
        (List.length ledger_advice.Mv_opt.Advisor.picks)
        (used ledger_advice) config.Mv_opt.Advisor.budget;
      if not feasible then begin
        prerr_endline "from-ledger: selection exceeds the storage budget";
        exit 3
      end;
      if ledger_cost > uniform_cost +. 1e-6 then begin
        prerr_endline
          "from-ledger: ledger-priced selection lost to the uniform one on \
           the observed trace";
        exit 3
      end;
      print_endline
        "ledger-priced selection is feasible and never worse on the observed \
         trace"
    end
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Mine view candidates from a generated workload, select a set under \
          a storage budget (greedy + local search with a maintenance-cost \
          term), register the picks, and report workload cost before/after; \
          --from-ledger re-prices with observed query frequencies")
    Term.(
      const run $ queries $ candidates $ budget $ seed $ write_fraction
      $ from_ledger)

(* ---- bench ---- *)

let bench_cmd =
  let views =
    Arg.(
      value & opt int 200
      & info [ "views" ] ~docv:"N" ~doc:"View population size.")
  in
  let queries =
    Arg.(
      value & opt int 50
      & info [ "queries" ] ~docv:"N" ~doc:"Query batch size.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard the query batch over $(docv) OCaml domains against one \
             shared registry. With $(docv) > 1 the sequential run is \
             measured too and the counter totals are cross-checked.")
  in
  let json_file =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also dump the measurements as JSON.")
  in
  let run views queries domains json_file =
    let domains = max 1 domains in
    let w =
      Mv_experiments.Harness.make_workload ~nviews:views ~nqueries:queries ()
    in
    let config = { Mv_experiments.Harness.alt = true; filter = true } in
    (* warmup, then sequential baseline, then (optionally) the sharded run *)
    ignore (Mv_experiments.Harness.run w ~nviews:0 ~config);
    let seq = Mv_experiments.Harness.run w ~nviews:views ~config in
    let ms =
      if domains = 1 then [ seq ]
      else
        [ seq; Mv_experiments.Harness.run ~domains w ~nviews:views ~config ]
    in
    Mv_experiments.Report.scaling_table ms;
    (match ms with
    | [ s; p ] ->
        let agree =
          s.Mv_experiments.Harness.candidates
          = p.Mv_experiments.Harness.candidates
          && s.Mv_experiments.Harness.matched
             = p.Mv_experiments.Harness.matched
          && s.Mv_experiments.Harness.substitutes
             = p.Mv_experiments.Harness.substitutes
          && s.Mv_experiments.Harness.plans_using_views
             = p.Mv_experiments.Harness.plans_using_views
          && s.Mv_experiments.Harness.level_flow
             = p.Mv_experiments.Harness.level_flow
        in
        Printf.printf
          "\nparallel run observationally equal to sequential: %b\n" agree;
        if not agree then exit 3
    | _ -> ());
    match json_file with
    | None -> ()
    | Some file ->
        dump_registry
          ~extra:[ ("scaling", Mv_experiments.Report.scaling_json ms) ]
          Mv_obs.Registry.global file
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Measure batch optimization over the section-5 workload, \
          optionally sharded over OCaml domains")
    Term.(const run $ views $ queries $ domains $ json_file)

(* ---- cache-stats ---- *)

let cache_stats_cmd =
  let views =
    Arg.(
      value & opt int 100
      & info [ "views" ] ~docv:"N" ~doc:"View population size.")
  in
  let queries =
    Arg.(
      value & opt int 25
      & info [ "queries" ] ~docv:"N" ~doc:"Distinct queries in the repeated batch.")
  in
  let passes =
    Arg.(
      value & opt int 3
      & info [ "passes" ] ~docv:"N" ~doc:"Timed warm passes after the cold one.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Shard each pass over $(docv) OCaml domains (one shared cache).")
  in
  let capacity =
    Arg.(
      value & opt int 1024
      & info [ "capacity" ] ~docv:"N" ~doc:"LRU capacity per cache layer.")
  in
  let json_file =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also dump the measurement as JSON.")
  in
  let run views queries passes domains capacity json_file =
    let w =
      Mv_experiments.Harness.make_workload ~nviews:views ~nqueries:queries ()
    in
    let m =
      Mv_experiments.Harness.serving ~domains:(max 1 domains)
        ~passes:(max 1 passes) ~capacity w ~nviews:views
    in
    Mv_experiments.Report.serving_table m;
    (match json_file with
    | None -> ()
    | Some file ->
        dump_registry
          ~extra:[ ("serving", Mv_experiments.Report.serving_json m) ]
          Mv_obs.Registry.global file);
    if
      not
        (m.Mv_experiments.Harness.warm_identical
        && m.Mv_experiments.Harness.churn_consistent
        && m.Mv_experiments.Harness.churn_no_stale)
    then exit 3
  in
  Cmd.v
    (Cmd.info "cache-stats"
       ~doc:
         "Serve a repeated query batch through the epoch-validated \
          match/plan cache; print hit/miss/eviction/invalidation counters \
          and warm-vs-cold latency")
    Term.(const run $ views $ queries $ passes $ domains $ capacity $ json_file)

(* ---- serve ---- *)

let serve_cmd =
  let views =
    Arg.(
      value & opt int 200
      & info [ "views" ] ~docv:"N" ~doc:"View population size.")
  in
  let queries =
    Arg.(
      value & opt int 25
      & info [ "queries" ] ~docv:"N" ~doc:"Distinct queries in the stream.")
  in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"N" ~doc:"Serving domains (plus one churn mutator).")
  in
  let rate =
    Arg.(
      value & opt float 200.0
      & info [ "rate" ] ~docv:"QPS"
          ~doc:"Target arrival rate across all domains; 0 = closed loop.")
  in
  let duration =
    Arg.(
      value & opt float 1.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Timed-window length.")
  in
  let fixed =
    Arg.(
      value & flag
      & info [ "fixed" ]
          ~doc:"Fixed-rate arrivals instead of the Poisson default.")
  in
  let churn =
    Arg.(
      value & opt float 0.12
      & info [ "churn-period" ] ~docv:"SECONDS"
          ~doc:"Seconds between add/drop mutations; 0 disables churn.")
  in
  let json_file =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also dump the measurement as JSON.")
  in
  let run views queries domains rate duration fixed churn json_file =
    let w =
      Mv_experiments.Harness.make_workload ~nviews:views ~nqueries:queries ()
    in
    let module S = Mv_experiments.Serve in
    let cfg =
      {
        S.default_cfg with
        S.nviews = views;
        domains = max 1 domains;
        rate;
        poisson = not fixed;
        duration = Float.max 0.05 duration;
        churn_period = churn;
      }
    in
    let m = S.run ~cfg w in
    Mv_experiments.Report.serve_table m;
    (match json_file with
    | None -> ()
    | Some file ->
        dump_registry
          ~extra:
            [ ("serving_throughput", Mv_experiments.Report.serve_json m) ]
          Mv_obs.Registry.global file);
    if not m.S.sv_consistent then exit 3
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Sustain an open-loop query stream over OCaml domains against RCU \
          registry snapshots under add/drop churn; print throughput and \
          latency percentiles and replay sampled observations sequentially")
    Term.(
      const run $ views $ queries $ domains $ rate $ duration $ fixed $ churn
      $ json_file)

(* ---- top / metrics ---- *)

(* Optimize a generated workload against its view population [passes]
   times with a timeline sampler running, so the registry's obs
   instruments, the per-view health ledger and the window ring all carry
   real data for `top` and `metrics` to surface. *)
let ledger_run ~views ~queries ~passes =
  let w =
    Mv_experiments.Harness.make_workload ~nviews:views ~nqueries:queries ()
  in
  let registry = Mv_core.Registry.create schema in
  List.iter
    (Mv_core.Registry.add_prebuilt registry)
    w.Mv_experiments.Harness.views;
  let obs = registry.Mv_core.Registry.obs in
  let tl = Mv_obs.Timeline.create ~capacity:240 obs in
  let sampler = Mv_obs.Timeline.start ~period:0.02 tl in
  for _ = 1 to max 1 passes do
    List.iter
      (fun q ->
        ignore
          (Mv_opt.Optimizer.optimize registry w.Mv_experiments.Harness.stats q))
      w.Mv_experiments.Harness.queries
  done;
  Mv_obs.Timeline.stop sampler;
  (registry, tl)

let workload_args =
  let views =
    Arg.(
      value & opt int 100
      & info [ "views" ] ~docv:"N" ~doc:"View population size.")
  in
  let queries =
    Arg.(
      value & opt int 25
      & info [ "queries" ] ~docv:"N" ~doc:"Query batch size.")
  in
  let passes =
    Arg.(
      value & opt int 2
      & info [ "passes" ] ~docv:"N"
          ~doc:"Optimize the batch this many times (warm ledger counts).")
  in
  (views, queries, passes)

let top_cmd =
  let views, queries, passes = workload_args in
  let limit =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N"
          ~doc:"Keep only the first $(docv) rows (0 = all).")
  in
  let json_file =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also dump the obs registry, timeline and ledger as JSON.")
  in
  let run views queries passes limit json_file =
    let registry, tl = ledger_run ~views ~queries ~passes in
    let health = registry.Mv_core.Registry.health in
    Printf.printf
      "per-view health over %d optimizations (%d passes x %d queries), by \
       net benefit:\n"
      (Mv_core.Health.queries_total health)
      (max 1 passes) queries;
    print_string
      (Mv_core.Health.render
         ?limit:(if limit > 0 then Some limit else None)
         health);
    let rows = Mv_core.Health.rows health in
    let dead = List.filter Mv_core.Health.dead rows in
    Printf.printf "%d view(s), %d matched at least once, %d dead\n"
      (List.length rows)
      (List.length rows - List.length dead)
      (List.length dead);
    match json_file with
    | None -> ()
    | Some file ->
        dump_registry ~timeline:tl ~health registry.Mv_core.Registry.obs file
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run a ledger-observed workload and print the per-view health \
          table (times candidate/matched/chosen, estimated benefit, \
          maintenance seconds) sorted by net benefit, dead views flagged")
    Term.(const run $ views $ queries $ passes $ limit $ json_file)

let metrics_cmd =
  let views, queries, passes = workload_args in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the OpenMetrics exposition to $(docv) instead of stdout.")
  in
  let run views queries passes out =
    let registry, tl = ledger_run ~views ~queries ~passes in
    let obs = registry.Mv_core.Registry.obs in
    let families =
      Mv_obs.Export.families_of_registry obs
      @ Mv_obs.Export.timer_cpu_families obs
      @ Mv_core.Health.families registry.Mv_core.Registry.health
      @ Mv_obs.Export.families_of_timeline tl
    in
    let body = Mv_obs.Export.render families in
    match out with
    | None -> print_string body
    | Some file ->
        let oc = open_out file in
        output_string oc body;
        close_out oc;
        Printf.printf "wrote %s\n" file
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a ledger-observed workload and export every obs instrument, \
          the per-view health ledger and the timeline windows in \
          OpenMetrics text format")
    Term.(const run $ views $ queries $ passes $ out)

(* ---- refresh ---- *)

let refresh_cmd =
  let scale =
    Arg.(
      value & opt int 2
      & info [ "scale" ] ~docv:"N" ~doc:"TPC-H data generator scale.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let batches =
    Arg.(
      value & opt int 5
      & info [ "batches" ] ~docv:"N"
          ~doc:"Maintained write batches to push through Ivm.apply.")
  in
  let batch_rows =
    Arg.(
      value & opt int 8
      & info [ "batch-rows" ] ~docv:"N"
          ~doc:"Base rows written per batch (half inserts, half deletes).")
  in
  let run scale seed batches batch_rows =
    let db = Mv_tpch.Datagen.generate ~seed ~scale () in
    let registry = Mv_core.Registry.create schema in
    let view_sql =
      {| create view rf_rev with schemabinding as
         select o_custkey, count_big(*) as cnt,
                sum(l_extendedprice) as rev
         from dbo.lineitem, dbo.orders
         where l_orderkey = o_orderkey
         group by o_custkey |}
    in
    let name, vdef = Mv_sql.Parser.parse_view schema view_sql in
    let view = Mv_core.Registry.add_view registry ~name vdef in
    ignore (Mv_engine.Exec.materialize db view);
    let stats = Mv_engine.Database.stats db in
    let q =
      Mv_sql.Parser.parse_query schema
        {| select o_custkey, sum(l_extendedprice) as rev
           from lineitem, orders
           where l_orderkey = o_orderkey
           group by o_custkey |}
    in
    let qa = Mv_relalg.Analysis.analyze schema q in
    let uses fresh_only =
      let r = Mv_opt.Optimizer.optimize ~fresh_only registry stats q in
      List.mem name (Mv_opt.Plan.views_used r.Mv_opt.Optimizer.plan)
    in
    let explain_fate () =
      match
        List.find_opt
          (fun ((v : Mv_core.View.t), _) -> v.Mv_core.View.name = name)
          (Mv_core.Registry.explain ~fresh_only:true registry qa)
        |> Option.map snd
      with
      | Some (Mv_core.Registry.Matched _) -> "matched"
      | Some (Mv_core.Registry.Rejected r) -> "reject:" ^ Mv_core.Reject.label r
      | Some (Mv_core.Registry.Filtered s) ->
          "filter:" ^ Mv_core.Filter_tree.stage_name s
      | None -> "unknown"
    in
    Printf.printf "materialized %s (%d rows, fresh)\n" name
      view.Mv_core.View.row_count;
    Printf.printf "fresh-only optimize uses the view: %b\n" (uses true);
    (* an unmaintained write: the registry marks every view over the table *)
    let li = Mv_engine.Database.table_exn db "lineitem" in
    let some_row = List.hd li.Mv_engine.Table.rows in
    Mv_engine.Database.insert db "lineitem" some_row;
    let marked = Mv_core.Registry.mark_stale registry ~tables:[ "lineitem" ] in
    Printf.printf
      "\nunmaintained write to lineitem: %d view(s) marked stale\n" marked;
    Printf.printf "fresh-only optimize uses the view: %b (%s)\n" (uses true)
      (explain_fate ());
    Printf.printf "default optimize still uses it:    %b\n" (uses false);
    (* refresh = rematerialize the stale view; it is fresh again *)
    ignore (Mv_engine.Exec.materialize db view);
    Printf.printf "\nrematerialized %s: stale=%b, fresh-only uses it: %b\n" name
      (Mv_core.View.is_stale view) (uses true);
    (* from here on, keep it fresh incrementally under write batches *)
    let ivm = Mv_engine.Ivm.create db in
    Mv_engine.Ivm.attach ivm view;
    let rng = Mv_util.Prng.create (seed + 1) in
    let span = Mv_obs.Instrument.enter () in
    for _ = 1 to max 1 batches do
      let rows = (Mv_engine.Database.table_exn db "lineitem").Mv_engine.Table.rows in
      let n = List.length rows in
      let n_ins = max 1 (batch_rows / 2) in
      let n_del = min (max 0 (batch_rows - n_ins)) (n / 2) in
      let ins =
        List.init n_ins (fun _ -> List.nth rows (Mv_util.Prng.int rng n))
      in
      let del =
        List.filteri (fun i _ -> i < n_del) (Mv_util.Prng.shuffle rng rows)
      in
      Mv_engine.Ivm.apply ivm [ ("lineitem", { Mv_engine.Ivm.ins; del }) ]
    done;
    let wall, _ = Mv_obs.Instrument.elapsed span in
    Printf.printf
      "\napplied %d maintained batches (%d rows each) in %.4fs; stale=%b\n"
      (max 1 batches) batch_rows wall
      (Mv_core.View.is_stale view);
    (* verify: the maintained contents match a from-scratch evaluation *)
    let direct = Mv_engine.Exec.execute db (Mv_core.View.spjg view) in
    let kept =
      {
        Mv_engine.Relation.cols = direct.Mv_engine.Relation.cols;
        rows = (Mv_engine.Database.table_exn db name).Mv_engine.Table.rows;
      }
    in
    let ok = Mv_engine.Relation.same_bag direct kept in
    Printf.printf "maintained contents equivalent to recomputation: %b\n" ok;
    Printf.printf "fresh-only optimize uses the view: %b\n" (uses true);
    if not (ok && uses true) then exit 3
  in
  Cmd.v
    (Cmd.info "refresh"
       ~doc:
         "Demonstrate the freshness protocol: unmaintained writes mark views \
          stale (rejected under fresh-only matching), rematerialization or \
          incremental maintenance (Ivm.apply) makes them fresh again; \
          verifies maintained contents against recomputation")
    Term.(const run $ scale $ seed $ batches $ batch_rows)

(* ---- demo ---- *)

let demo_cmd =
  let run () =
    let db = Mv_tpch.Datagen.generate ~seed:1 ~scale:2 () in
    let registry = Mv_core.Registry.create schema in
    let view_sql =
      {| create view demo_rev with schemabinding as
         select o_custkey, count_big(*) as cnt,
                sum(l_quantity * l_extendedprice) as revenue
         from dbo.lineitem, dbo.orders
         where l_orderkey = o_orderkey
         group by o_custkey |}
    in
    let name, vdef = Mv_sql.Parser.parse_view schema view_sql in
    let view = Mv_core.Registry.add_view registry ~name vdef in
    ignore (Mv_engine.Exec.materialize db view);
    Printf.printf "registered + materialized view:\n%s\n\n" view_sql;
    let q =
      Mv_sql.Parser.parse_query schema
        {| select o_custkey, avg(l_quantity * l_extendedprice) as avg_rev
           from lineitem, orders
           where l_orderkey = o_orderkey and o_custkey <= 30
           group by o_custkey |}
    in
    Printf.printf "query:\n%s\n\n" (Mv_relalg.Spjg.to_sql q);
    match Mv_core.Registry.find_substitutes_spjg registry q with
    | [] -> print_endline "no substitute found"
    | s :: _ ->
        Printf.printf "substitute:\n%s\n\n" (Mv_core.Substitute.to_sql s);
        let direct = Mv_engine.Exec.execute db q in
        let via = Mv_engine.Exec.execute_substitute db s in
        Printf.printf "equivalent on generated data: %b (%d rows)\n"
          (Mv_engine.Relation.same_bag direct via)
          (Mv_engine.Relation.cardinality direct)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Self-contained end-to-end demonstration")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "mvopt" ~version:"1.0.0"
       ~doc:
         "View matching for materialized views (Goldstein & Larson, SIGMOD \
          2001)")
    [
      parse_cmd;
      match_cmd;
      explain_cmd;
      whynot_cmd;
      generate_cmd;
      advise_cmd;
      bench_cmd;
      cache_stats_cmd;
      serve_cmd;
      top_cmd;
      metrics_cmd;
      refresh_cmd;
      demo_cmd;
    ]

let () = exit (Cmd.eval main)
